package trace

import (
	"context"
	"sync"
)

// Default ring capacities: a 52-day paper year emits ~7500 decisions
// and ~37000 ticks at the 2-minute cadence; the defaults keep the most
// recent few days of full-cadence telemetry while bounding memory to a
// few megabytes.
const (
	DefaultDecisionCapacity = 4096
	DefaultTickCapacity     = 16384
)

// Ring is the flight-recorder Recorder: two preallocated circular
// buffers (decisions and ticks) that keep the most recent records,
// overwriting the oldest once full. The record path performs no
// allocation — each record is a single struct copy into its ring slot —
// and a mutex makes the ring safe to share across the concurrent runs
// of an experiment grid.
//
// Every append advances a per-kind sequence number, so readers can tail
// the ring live: Cursor marks a position, TailDecisions/TailTicks copy
// what arrived since (reporting records the ring overwrote before the
// reader caught up), and WaitForMore blocks until the cursor moves.
// That is the substrate of the serve plane's SSE stream.
type Ring struct {
	mu sync.Mutex

	dec     []DecisionRecord
	decHead int // index of the oldest record
	decLen  int

	tick     []TickRecord
	tickHead int
	tickLen  int

	// Total records ever appended per kind: the ring holds the seq range
	// (decSeq-decLen, decSeq].
	decSeq, tickSeq uint64

	// Overwrite accounting: how many records the ring has dropped to
	// make room (flight-recorder semantics — the newest survive).
	decDropped, tickDropped uint64

	// notify, when non-nil, is closed on the next append to wake
	// WaitForMore callers. It is created lazily by waiters, so the
	// record path stays allocation-free when nobody is tailing (closing
	// a channel does not allocate).
	notify chan struct{}

	reg *Registry

	// Pairing state for the prediction-error histogram: the previous
	// controller decision's winning prediction, judged against the next
	// decision's observed hottest inlet.
	havePrev             bool
	prevPredHottest      float64
	prevTime, prevPeriod float64
	haveMode             bool
	lastMode             int32
}

// NewRing creates a ring recorder with the given capacities (values
// ≤ 0 take the defaults) and a fresh metrics Registry.
func NewRing(decisionCap, tickCap int) *Ring {
	if decisionCap <= 0 {
		decisionCap = DefaultDecisionCapacity
	}
	if tickCap <= 0 {
		tickCap = DefaultTickCapacity
	}
	return &Ring{
		dec:  make([]DecisionRecord, decisionCap),
		tick: make([]TickRecord, tickCap),
		reg:  NewRegistry(),
	}
}

// Metrics returns the ring's counter/gauge/histogram registry.
func (r *Ring) Metrics() *Registry { return r.reg }

// wake releases any WaitForMore callers. Called with mu held.
func (r *Ring) wake() {
	if r.notify != nil {
		close(r.notify)
		r.notify = nil
	}
}

// RecordDecision implements Recorder: copy the record into the ring and
// fold it into the metrics registry. Allocation-free.
func (r *Ring) RecordDecision(rec *DecisionRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()

	if r.decLen < len(r.dec) {
		r.dec[(r.decHead+r.decLen)%len(r.dec)] = *rec
		r.decLen++
	} else {
		r.dec[r.decHead] = *rec
		r.decHead = (r.decHead + 1) % len(r.dec)
		r.decDropped++
		r.reg.RingDecisionsDropped.Inc()
	}
	r.decSeq++
	r.reg.RingDecisions.Set(float64(r.decLen))
	r.wake()

	if rec.Source == SourceGuard || rec.Guard != GuardNone {
		r.reg.GuardInterventionsTotal.Inc()
	} else {
		r.reg.DecisionsTotal.Inc()
	}
	if r.haveMode && rec.Mode != r.lastMode {
		r.reg.RegimeTransitionsTotal.Inc()
	}
	r.haveMode = true
	r.lastMode = rec.Mode
	r.reg.ActiveRegime.Set(float64(rec.Mode))
	if rec.Source == SourceController {
		r.reg.BandLoC.Set(rec.BandLo)
		r.reg.BandHiC.Set(rec.BandHi)
	}

	// Predicted-vs-realized: the previous controller decision predicted
	// the hottest inlet one period ahead; this record observed it. Only
	// consecutive decisions pair up — a day jump (or a guard record in
	// between) breaks the chain rather than scoring across the gap.
	if rec.Source == SourceController {
		if r.havePrev {
			dt := rec.Time - r.prevTime
			if dt > 0 && dt <= 1.5*r.prevPeriod {
				err := rec.ActualHottest - r.prevPredHottest
				if err < 0 {
					err = -err
				}
				r.reg.PredictionAbsError.Observe(err)
			}
		}
		if pred, ok := rec.WinnerPredictedHottest(); ok {
			r.havePrev = true
			r.prevPredHottest = pred
			r.prevTime = rec.Time
			r.prevPeriod = rec.PeriodSeconds
		} else {
			r.havePrev = false
		}
	} else {
		r.havePrev = false
	}
}

// RecordTick implements Recorder. Allocation-free.
func (r *Ring) RecordTick(rec *TickRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tickLen < len(r.tick) {
		r.tick[(r.tickHead+r.tickLen)%len(r.tick)] = *rec
		r.tickLen++
	} else {
		r.tick[r.tickHead] = *rec
		r.tickHead = (r.tickHead + 1) % len(r.tick)
		r.tickDropped++
		r.reg.RingTicksDropped.Inc()
	}
	r.tickSeq++
	r.reg.TicksTotal.Inc()
	r.reg.RingTicks.Set(float64(r.tickLen))
	r.reg.InletMaxC.Set(rec.InletMax)
	r.reg.InletMinC.Set(rec.InletMin)
	r.reg.OutsideTempC.Set(rec.OutsideTemp)
	r.reg.OutsideRH.Set(rec.OutsideRH)
	r.reg.ActiveRegime.Set(float64(rec.Mode))
	r.reg.SimTimeSeconds.Set(rec.Time)
	r.wake()
}

// RestoreCursor seeds the ring's sequence counters from a checkpointed
// Cursor so record numbering (and SSE Last-Event-ID continuity)
// survives a daemon restart: clients reconnecting with a pre-crash id
// resume from the live end instead of replaying renumbered history.
// Only an empty ring accepts a restore — once records exist the
// numbering is already in use.
func (r *Ring) RestoreCursor(c Cursor) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.decSeq != 0 || r.tickSeq != 0 {
		return false
	}
	r.decSeq, r.tickSeq = c.Decisions, c.Ticks
	return true
}

// RecordSpan implements SpanRecorder, feeding the registry's per-phase
// latency histograms. Allocation-free (histograms are atomic; no lock).
func (r *Ring) RecordSpan(p Phase, seconds float64) { r.reg.RecordSpan(p, seconds) }

// Dropped reports how many decision and tick records the ring has
// overwritten to make room for newer ones.
func (r *Ring) Dropped() (decisions, ticks uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decDropped, r.tickDropped
}

// Cursor marks a position in the ring's append history: how many
// records of each kind had been appended when it was taken.
type Cursor struct {
	Decisions uint64
	Ticks     uint64
}

// Cursor returns the current end position (everything appended so far
// is before it). Tail from a zero Cursor to read the retained history.
func (r *Ring) Cursor() Cursor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Cursor{Decisions: r.decSeq, Ticks: r.tickSeq}
}

// TailDecisions copies into buf the decision records appended after
// position c (oldest first), up to len(buf). It returns the number
// copied, how many were overwritten before they could be read (the
// reader was slower than the writer), and the cursor to pass next time.
func (r *Ring) TailDecisions(c Cursor, buf []DecisionRecord) (n int, skipped uint64, next Cursor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next = c
	oldest := r.decSeq - uint64(r.decLen)
	seq := c.Decisions
	if seq > r.decSeq {
		// A cursor from another ring (or a decoded last-event-id beyond
		// our history) clamps to the live end rather than reading junk.
		seq = r.decSeq
	}
	if seq < oldest {
		skipped = oldest - seq
		seq = oldest
	}
	for seq < r.decSeq && n < len(buf) {
		idx := (r.decHead + int(seq-oldest)) % len(r.dec)
		buf[n] = r.dec[idx]
		n++
		seq++
	}
	next.Decisions = seq
	return n, skipped, next
}

// TailTicks is TailDecisions for tick records.
func (r *Ring) TailTicks(c Cursor, buf []TickRecord) (n int, skipped uint64, next Cursor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next = c
	oldest := r.tickSeq - uint64(r.tickLen)
	seq := c.Ticks
	if seq > r.tickSeq {
		seq = r.tickSeq
	}
	if seq < oldest {
		skipped = oldest - seq
		seq = oldest
	}
	for seq < r.tickSeq && n < len(buf) {
		idx := (r.tickHead + int(seq-oldest)) % len(r.tick)
		buf[n] = r.tick[idx]
		n++
		seq++
	}
	next.Ticks = seq
	return n, skipped, next
}

// WaitForMore blocks until at least one record has been appended after
// position c, or ctx ends (returning its error). Multiple goroutines
// may wait on the same ring.
func (r *Ring) WaitForMore(ctx context.Context, c Cursor) error {
	for {
		r.mu.Lock()
		if r.decSeq > c.Decisions || r.tickSeq > c.Ticks {
			r.mu.Unlock()
			return nil
		}
		if r.notify == nil {
			r.notify = make(chan struct{})
		}
		ch := r.notify
		r.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Decisions returns the retained decision records, oldest first.
func (r *Ring) Decisions() []DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionRecord, r.decLen)
	for i := 0; i < r.decLen; i++ {
		out[i] = r.dec[(r.decHead+i)%len(r.dec)]
	}
	return out
}

// Ticks returns the retained tick records, oldest first.
func (r *Ring) Ticks() []TickRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TickRecord, r.tickLen)
	for i := 0; i < r.tickLen; i++ {
		out[i] = r.tick[(r.tickHead+i)%len(r.tick)]
	}
	return out
}

// Snapshot drains the ring into a Data value (copies; the ring keeps
// recording).
func (r *Ring) Snapshot() *Data {
	return &Data{Decisions: r.Decisions(), Ticks: r.Ticks()}
}
