package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// seedLines produces representative valid trace lines for the fuzz
// corpus: a full decision with candidates, a hold, a guard record, a
// tick, and non-finite values through every float channel.
func seedLines(t testing.TB) []string {
	t.Helper()
	d := DecisionRecord{
		Time: 600, Day: 3, Source: SourceController, PeriodSeconds: 600,
		BandLo: 20, BandHi: 25, ActualHottest: 24.5,
		NumCandidates: 2, Winner: 1, Mode: 1, FanSpeed: 0.6,
	}
	d.Candidates[0] = CandidateRecord{Mode: 0, FanSpeed: 0.3, Penalty: 2.5,
		Terms: PenaltyTerms{Band: 2, Center: 0.5}, NumPods: 4, RH: 55, PowerW: 90}
	d.Candidates[0].PodTemp = [MaxPods]float64{23, 24, 25.5, 24.25}
	d.Candidates[1] = CandidateRecord{Mode: 1, FanSpeed: 0.6, Penalty: 1.25,
		NumPods: 4, RH: 52, PowerW: 140}
	d.Candidates[1].PodTemp = [MaxPods]float64{22, 23, 24.5, 23.75}
	hold := DecisionRecord{Time: 1200, Day: 3, Source: SourceController,
		PeriodSeconds: 600, ActualHottest: math.NaN(), Winner: -1, Hold: true, Mode: 1}
	guard := DecisionRecord{Time: 1800, Day: 3, Source: SourceGuard,
		Guard: GuardFailSafeControl, Winner: -1, Mode: 3, CompSpeed: 1}
	nonfinite := DecisionRecord{Time: math.Inf(1), Day: 4, Winner: -1,
		ActualHottest: math.Inf(-1)}
	tick := TickRecord{Time: 600, Day: 3, OutsideTemp: 11.5, OutsideRH: 70,
		InletMin: 21, InletMax: 24.5, DiskMin: 30, DiskMax: 39, InsideRH: 50,
		Mode: 1, FanSpeed: 0.6, CoolingW: 140, ITW: 2200, Utilization: 0.4}

	var lines []string
	for _, rec := range []DecisionRecord{d, hold, guard, nonfinite} {
		data := &Data{Decisions: []DecisionRecord{rec}}
		var buf bytes.Buffer
		if err := data.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, buf.String())
	}
	{
		data := &Data{Ticks: []TickRecord{tick}}
		var buf bytes.Buffer
		if err := data.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, buf.String())
	}
	return lines
}

// FuzzTraceRoundTrip feeds the JSONL decoder arbitrary bytes: it must
// never panic, and whenever it accepts the input, encoding the decoded
// trace and decoding that again must reproduce the same bytes and the
// same records — encode∘decode is a fixed point.
func FuzzTraceRoundTrip(f *testing.F) {
	lines := seedLines(f)
	for _, l := range lines {
		f.Add([]byte(l))
	}
	f.Add([]byte(strings.Join(lines, "")))
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"kind":"tick"}` + "\n"))
	f.Add([]byte(`{"kind":"decision","winner":5,"candidates":[{"mode":1}]}` + "\n"))
	f.Add([]byte(`{"kind":"decision","t":null,"fan":"+Inf","comp":"-Inf"}` + "\n"))

	f.Fuzz(func(t *testing.T, in []byte) {
		data, err := ReadJSONL(bytes.NewReader(in))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var enc1 bytes.Buffer
		if err := data.WriteJSONL(&enc1); err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		data2, err := ReadJSONL(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoding:\n%s", err, enc1.String())
		}
		var enc2 bytes.Buffer
		if err := data2.WriteJSONL(&enc2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				enc1.String(), enc2.String())
		}
		// The analysis entry points must also tolerate anything the
		// decoder accepts (the coolair-trace inspector calls these).
		_ = data.DaySummaries()
		_ = data.TopPredictionErrors(10)
	})
}
