package trace

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotone event counter, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Non-positive n is ignored: counters are monotone, so a
// negative n is dropped rather than applied, and n == 0 is a no-op (it
// would not change the count anyway, and skipping it keeps the zero and
// negative cases on the same documented "ignored" path).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a current-value metric (a float64 that goes up and down),
// safe for concurrent use. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the current value. Any float64 is stored verbatim,
// including NaN and ±Inf — a gauge mirrors state, it does not judge it
// (the Prometheus renderer encodes non-finite values as NaN/±Inf).
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the current value by delta (negative deltas subtract).
// The read-modify-write is a CAS loop, so concurrent Adds never lose an
// update; mixing Add with Set is safe but the usual usage is one or the
// other per gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations into fixed cumulative
// buckets, Prometheus-style: bucket i counts observations ≤ Bounds[i],
// with an implicit +Inf bucket at the end. All methods are safe for
// concurrent use; Observe performs no allocation.
type Histogram struct {
	bounds []float64
	// leLabels caches the le="<bound>" label pair for each bucket
	// (+Inf last) — bounds are immutable, so the exposition renderer
	// reuses these instead of re-formatting floats on every scrape.
	leLabels []string
	counts   []atomic.Int64 // len(bounds)+1; non-cumulative per bucket
	total    atomic.Int64
	sumBits  atomic.Uint64 // float64 bit pattern, CAS-updated
}

// NewHistogram creates a histogram with the given ascending bucket
// upper bounds. Unsorted input is sorted; an empty bound list yields a
// single +Inf bucket.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	le := make([]string, len(bs)+1)
	for i, bound := range bs {
		le[i] = `le="` + formatValue(bound) + `"`
	}
	le[len(bs)] = `le="+Inf"`
	return &Histogram{bounds: bs, leLabels: le, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. NaN samples are dropped (they carry no
// magnitude to bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the bounds and the cumulative count at each bound,
// ending with the +Inf bucket (== Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// Registry is the metrics surface of the flight recorder: event
// counters, current-state gauges (the serve plane's live view), the
// prediction-error histogram, and per-phase decision-latency
// histograms. It renders in Prometheus text exposition format — with
// # HELP/# TYPE metadata — via WritePrometheus/String.
type Registry struct {
	// DecisionsTotal counts controller decision records (holds
	// included).
	DecisionsTotal Counter
	// RegimeTransitionsTotal counts decisions whose chosen mode differs
	// from the previous decision's.
	RegimeTransitionsTotal Counter
	// GuardInterventionsTotal counts guard annotation records (retries,
	// holds, fail-safe service).
	GuardInterventionsTotal Counter
	// TicksTotal counts simulator telemetry samples.
	TicksTotal Counter
	// RingDecisionsDropped / RingTicksDropped count records the ring
	// overwrote to make room (flight-recorder newest-wins semantics).
	RingDecisionsDropped Counter
	RingTicksDropped     Counter
	// StreamDroppedTotal counts records SSE stream clients missed
	// because the ring overwrote them before the client caught up
	// (slow-client drop accounting; see httpserve.StreamHandler).
	StreamDroppedTotal Counter

	// Supervision counters (the serve daemon's crash-safety plane).
	// RestartsTotal counts supervised run-loop restarts after a panic;
	// TrainingsTotal counts training campaigns actually run (a warm boot
	// that restores a model snapshot leaves it at zero);
	// StateRestoreSuccessTotal / StateRestoreFailureTotal count snapshot
	// restores that verified cleanly vs. were rejected (corrupt,
	// mismatched, or unreadable — each failure is a logged cold-boot
	// fallback); CheckpointsTotal counts run-state checkpoints persisted.
	RestartsTotal            Counter
	TrainingsTotal           Counter
	StateRestoreSuccessTotal Counter
	StateRestoreFailureTotal Counter
	CheckpointsTotal         Counter

	// AlertsTotal counts SLO alert firings (transitions into the firing
	// state); AlertsActive (below, with the gauges) is how many rules
	// are firing right now. Both are fed by the series alert engine.
	AlertsTotal Counter

	// Current-state gauges, refreshed by the ring on every record.
	// InletMaxC/InletMinC are the pod-inlet extremes (°C); OutsideTempC
	// and OutsideRH the outside air; ActiveRegime the effective cooling
	// mode's integer code; BandLoC/BandHiC the band in force at the last
	// decision; RingDecisions/RingTicks the ring occupancy.
	InletMaxC     Gauge
	InletMinC     Gauge
	OutsideTempC  Gauge
	OutsideRH     Gauge
	ActiveRegime  Gauge
	BandLoC       Gauge
	BandHiC       Gauge
	RingDecisions Gauge
	RingTicks     Gauge
	// ServeMode is the serve daemon's mode code (see the daemon's mode
	// enum: 0 booting, 1 restoring, 2 degraded, 3 running, 4 crash-loop).
	ServeMode Gauge
	// SimTimeSeconds is the simulated time of the last tick record
	// (absolute seconds) — after a warm boot it resumes near the
	// checkpointed tick instead of zero, which the chaos tests assert.
	SimTimeSeconds Gauge
	// AlertsActive is the number of SLO alert rules currently firing.
	AlertsActive Gauge

	// PredictionAbsError is the |predicted − realized| hottest-inlet
	// error (°C) between consecutive decisions.
	PredictionAbsError *Histogram
	// PhaseSeconds holds one latency histogram per decision-pipeline
	// phase (forecast, band, enumerate, predict, penalty, guard); the
	// exposition renders them as one family labeled by phase.
	PhaseSeconds [NumPhases]*Histogram
}

// NewRegistry creates a registry with the default prediction-error
// buckets (0.05–5 °C) and phase-latency buckets (1 µs–100 ms).
func NewRegistry() *Registry {
	r := &Registry{PredictionAbsError: NewHistogram(0.05, 0.1, 0.2, 0.5, 1, 2, 5)}
	for p := range r.PhaseSeconds {
		r.PhaseSeconds[p] = NewHistogram(1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 0.1)
	}
	return r
}

// RecordSpan folds one phase-latency observation into the matching
// histogram (out-of-range phases are dropped). Allocation-free.
func (r *Registry) RecordSpan(p Phase, seconds float64) {
	if p < 0 || p >= NumPhases {
		return
	}
	r.PhaseSeconds[p].Observe(seconds)
}

// String renders the registry in Prometheus text exposition format
// (WritePrometheus into a string).
func (r *Registry) String() string { return r.renderString() }
