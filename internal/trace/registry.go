package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotone event counter, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram accumulates float64 observations into fixed cumulative
// buckets, Prometheus-style: bucket i counts observations ≤ Bounds[i],
// with an implicit +Inf bucket at the end. All methods are safe for
// concurrent use; Observe performs no allocation.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; non-cumulative per bucket
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bit pattern, CAS-updated
}

// NewHistogram creates a histogram with the given ascending bucket
// upper bounds. Unsorted input is sorted; an empty bound list yields a
// single +Inf bucket.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. NaN samples are dropped (they carry no
// magnitude to bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the bounds and the cumulative count at each bound,
// ending with the +Inf bucket (== Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// Registry is the lightweight metrics surface of the flight recorder:
// a fixed set of named counters plus the prediction-error histogram.
// It renders in Prometheus text exposition format via String.
type Registry struct {
	// DecisionsTotal counts controller decision records (holds
	// included).
	DecisionsTotal Counter
	// RegimeTransitionsTotal counts decisions whose chosen mode differs
	// from the previous decision's.
	RegimeTransitionsTotal Counter
	// GuardInterventionsTotal counts guard annotation records (retries,
	// holds, fail-safe service).
	GuardInterventionsTotal Counter
	// TicksTotal counts simulator telemetry samples.
	TicksTotal Counter
	// PredictionAbsError is the |predicted − realized| hottest-inlet
	// error (°C) between consecutive decisions.
	PredictionAbsError *Histogram
}

// NewRegistry creates a registry with the default prediction-error
// buckets (0.05–5 °C).
func NewRegistry() *Registry {
	return &Registry{PredictionAbsError: NewHistogram(0.05, 0.1, 0.2, 0.5, 1, 2, 5)}
}

// String renders the registry in Prometheus text exposition format.
func (r *Registry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decisions_total %d\n", r.DecisionsTotal.Value())
	fmt.Fprintf(&b, "regime_transitions_total %d\n", r.RegimeTransitionsTotal.Value())
	fmt.Fprintf(&b, "guard_interventions_total %d\n", r.GuardInterventionsTotal.Value())
	fmt.Fprintf(&b, "ticks_total %d\n", r.TicksTotal.Value())
	bounds, cum := r.PredictionAbsError.Buckets()
	for i, bound := range bounds {
		fmt.Fprintf(&b, "prediction_abs_error_bucket{le=%q} %d\n", formatBound(bound), cum[i])
	}
	fmt.Fprintf(&b, "prediction_abs_error_bucket{le=\"+Inf\"} %d\n", cum[len(cum)-1])
	fmt.Fprintf(&b, "prediction_abs_error_sum %g\n", r.PredictionAbsError.Sum())
	fmt.Fprintf(&b, "prediction_abs_error_count %d\n", r.PredictionAbsError.Count())
	return b.String()
}

func formatBound(v float64) string { return fmt.Sprintf("%g", v) }
