package trace

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// dec builds a controller decision record with one winning candidate.
func dec(t float64, day int32, mode int32, penalty, predHot, actualHot float64) DecisionRecord {
	d := DecisionRecord{
		Time: t, Day: day, Source: SourceController,
		PeriodSeconds: 600, BandLo: 20, BandHi: 25,
		ActualHottest: actualHot, NumCandidates: 1, Winner: 0,
		Mode: mode, FanSpeed: 0.5,
	}
	d.Candidates[0] = CandidateRecord{
		Mode: mode, FanSpeed: 0.5, Penalty: penalty,
		NumPods: 2, RH: 50, PowerW: 120,
	}
	d.Candidates[0].PodTemp[0] = predHot - 1
	d.Candidates[0].PodTemp[1] = predHot
	return d
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4, 3)
	for i := 0; i < 10; i++ {
		d := dec(float64(i)*600, 0, 1, float64(i), 25, 25)
		r.RecordDecision(&d)
	}
	for i := 0; i < 7; i++ {
		k := TickRecord{Time: float64(i) * 120}
		r.RecordTick(&k)
	}
	got := r.Decisions()
	if len(got) != 4 {
		t.Fatalf("ring kept %d decisions, want 4", len(got))
	}
	for i, d := range got {
		if want := float64(6+i) * 600; d.Time != want {
			t.Errorf("decision %d time %v, want %v (newest must survive)", i, d.Time, want)
		}
	}
	ticks := r.Ticks()
	if len(ticks) != 3 || ticks[0].Time != 4*120 {
		t.Errorf("ticks = %d records starting %v, want 3 starting 480", len(ticks), ticks[0].Time)
	}
	dd, td := r.Dropped()
	if dd != 6 || td != 4 {
		t.Errorf("dropped = %d/%d, want 6/4", dd, td)
	}
}

func TestRingRegistryCounters(t *testing.T) {
	r := NewRing(16, 16)
	// Three decisions: mode 1, 1, 2 → one transition. Second predicts
	// hottest 26 and third observes 27 → one abs-error sample of 1.
	d1 := dec(0, 0, 1, 0.5, 26, 25)
	d2 := dec(600, 0, 1, 0.4, 26, 26)
	d3 := dec(1200, 0, 2, 0.3, 25, 27)
	g := DecisionRecord{Time: 1800, Source: SourceGuard, Guard: GuardHold, Mode: 2}
	r.RecordDecision(&d1)
	r.RecordDecision(&d2)
	r.RecordDecision(&d3)
	r.RecordDecision(&g)
	k := TickRecord{Time: 0}
	r.RecordTick(&k)

	m := r.Metrics()
	if got := m.DecisionsTotal.Value(); got != 3 {
		t.Errorf("decisions_total = %d, want 3", got)
	}
	if got := m.GuardInterventionsTotal.Value(); got != 1 {
		t.Errorf("guard_interventions_total = %d, want 1", got)
	}
	if got := m.RegimeTransitionsTotal.Value(); got != 1 {
		t.Errorf("regime_transitions_total = %d, want 1", got)
	}
	if got := m.TicksTotal.Value(); got != 1 {
		t.Errorf("ticks_total = %d, want 1", got)
	}
	// d1→d2: |26−26| = 0; d2→d3: |27−26| = 1 → two samples, sum 1.
	if got := m.PredictionAbsError.Count(); got != 2 {
		t.Errorf("prediction samples = %d, want 2", got)
	}
	if got := m.PredictionAbsError.Sum(); math.Abs(got-1) > 1e-12 {
		t.Errorf("prediction error sum = %v, want 1", got)
	}
	out := m.String()
	for _, want := range []string{"decisions_total 3", "guard_interventions_total 1",
		"regime_transitions_total 1", "prediction_abs_error_count 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("registry text missing %q:\n%s", want, out)
		}
	}
}

func TestRingDayGapBreaksPredictionPairing(t *testing.T) {
	r := NewRing(16, 16)
	d1 := dec(0, 0, 1, 0.5, 26, 25)
	// 7 days later (a year-sample jump): must not pair with d1.
	d2 := dec(7*86400, 7, 1, 0.5, 26, 30)
	r.RecordDecision(&d1)
	r.RecordDecision(&d2)
	if got := r.Metrics().PredictionAbsError.Count(); got != 0 {
		t.Errorf("gap pairing produced %d samples, want 0", got)
	}
}

func TestRingConcurrentRecording(t *testing.T) {
	r := NewRing(64, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d := dec(float64(i)*600, int32(w), 1, 0.1, 25, 25)
				r.RecordDecision(&d)
				k := TickRecord{Time: float64(i)}
				r.RecordTick(&k)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Metrics().DecisionsTotal.Value(); got != 800 {
		t.Errorf("decisions_total = %d, want 800", got)
	}
	if got := len(r.Decisions()); got != 64 {
		t.Errorf("retained %d, want capacity 64", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1.0, 1.5, 3, 10} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds/cum lengths %d/%d", len(bounds), len(cum))
	}
	// ≤1: 0.5 and 1.0 → 2; ≤2: +1.5 → 3; ≤5: +3 → 4; +Inf: +10 → 5.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Mean()-16.0/5) > 1e-12 {
		t.Errorf("mean = %v, want 3.2", h.Mean())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := dec(600, 1, 2, 1.25, 26.5, 25.75)
	d.Candidates[0].Terms = PenaltyTerms{Band: 1.0, Center: 0.25}
	skip := DecisionRecord{
		Time: 1200, Day: 1, Source: SourceController, PeriodSeconds: 600,
		NumCandidates: 1, Winner: -1, Hold: true,
	}
	skip.Candidates[0] = CandidateRecord{Mode: 3, Skipped: true}
	guard := DecisionRecord{Time: 1800, Day: 1, Source: SourceGuard,
		Guard: GuardFailSafeSensor, Winner: -1, Mode: 3, CompSpeed: 1}
	data := &Data{
		Decisions: []DecisionRecord{d, skip, guard},
		Ticks: []TickRecord{
			{Time: 0, Day: 1, OutsideTemp: 12.5, OutsideRH: 60, InletMin: 22,
				InletMax: 26, DiskMin: 30, DiskMax: 41, InsideRH: 48.5,
				Mode: 1, FanSpeed: 0.35, CoolingW: 180, ITW: 2400, Utilization: 0.42},
			{Time: 900, Day: 1, OutsideTemp: 13},
		},
	}

	var buf bytes.Buffer
	if err := data.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Decisions) != 3 || len(got.Ticks) != 2 {
		t.Fatalf("decoded %d decisions / %d ticks, want 3/2", len(got.Decisions), len(got.Ticks))
	}
	var buf2 bytes.Buffer
	if err := got.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("encode∘decode is not the identity:\nfirst:\n%s\nsecond:\n%s", buf.String(), buf2.String())
	}
	if got.Decisions[2].Guard != GuardFailSafeSensor {
		t.Errorf("guard action lost: %v", got.Decisions[2].Guard)
	}
	if !got.Decisions[1].Candidates[0].Skipped {
		t.Error("skipped flag lost")
	}
}

func TestJSONLNonFiniteRoundTrip(t *testing.T) {
	d := dec(0, 0, 1, math.NaN(), 26, math.Inf(1))
	d.Candidates[0].PodTemp[1] = math.Inf(-1)
	data := &Data{Decisions: []DecisionRecord{d}}
	var buf bytes.Buffer
	if err := data.WriteJSONL(&buf); err != nil {
		t.Fatalf("non-finite values must encode: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := got.Decisions[0].Candidates[0]
	if !math.IsNaN(c.Penalty) {
		t.Errorf("NaN penalty decoded as %v", c.Penalty)
	}
	if !math.IsInf(got.Decisions[0].ActualHottest, 1) || !math.IsInf(c.PodTemp[1], -1) {
		t.Errorf("infinities lost: %v / %v", got.Decisions[0].ActualHottest, c.PodTemp[1])
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"{not json}\n",
		`{"kind":"mystery"}` + "\n",
		`{"kind":"decision","t":"not-a-number-or-inf"}` + "\n",
	} {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("input %q decoded without error", in)
		}
	}
	// Blank lines are tolerated.
	if _, err := ReadJSONL(strings.NewReader("\n  \n")); err != nil {
		t.Errorf("blank-only input errored: %v", err)
	}
}

func TestJSONLMergeOrder(t *testing.T) {
	data := &Data{
		Decisions: []DecisionRecord{{Time: 600, Source: SourceController}},
		Ticks:     []TickRecord{{Time: 0}, {Time: 600}, {Time: 1200}},
	}
	var buf bytes.Buffer
	if err := data.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	// t=0 tick, then the t=600 decision before the t=600 tick, then t=1200.
	wantKinds := []string{"tick", "decision", "tick", "tick"}
	for i, k := range wantKinds {
		if !strings.Contains(lines[i], `"kind":"`+k+`"`) {
			t.Errorf("line %d = %s, want kind %s", i, lines[i], k)
		}
	}
}

func TestDaySummariesAndTopErrors(t *testing.T) {
	d1 := dec(0, 0, 1, 0.5, 26, 25)
	d2 := dec(600, 0, 1, 1.5, 24, 26.5) // realizes d1's 26 → err 0.5
	d3 := dec(1200, 0, 2, 0.25, 25, 22) // realizes d2's 24 → err 2
	// A hold still observes the hottest inlet, so it realizes d3's 25.
	hold := DecisionRecord{Time: 1800, Day: 0, Source: SourceController,
		PeriodSeconds: 600, ActualHottest: 25.5, Winner: -1, Hold: true, Mode: 2}
	g := DecisionRecord{Time: 2400, Day: 0, Source: SourceGuard, Guard: GuardRetry, Mode: 2}
	next := dec(86400*1, 1, 1, 0.1, 25, 25)
	data := &Data{Decisions: []DecisionRecord{d1, d2, d3, hold, g, next}}

	days := data.DaySummaries()
	if len(days) != 2 {
		t.Fatalf("got %d day summaries, want 2", len(days))
	}
	d := days[0]
	if d.Day != 0 || d.Decisions != 4 || d.Holds != 1 || d.GuardActions != 1 {
		t.Errorf("day0 = %+v", d)
	}
	if d.ModeDecisions[1] != 2 || d.ModeDecisions[2] != 2 {
		t.Errorf("mode histogram = %v", d.ModeDecisions)
	}
	if math.Abs(d.MeanWinnerPenalty-(0.5+1.5+0.25)/3) > 1e-12 || math.Abs(d.MaxWinnerPenalty-1.5) > 1e-12 {
		t.Errorf("penalties mean %v max %v", d.MeanWinnerPenalty, d.MaxWinnerPenalty)
	}
	// Pairs: d1→d2 (0.5), d2→d3 (2), d3→hold (0.5).
	if d.PredErrSamples != 3 || math.Abs(d.MaxAbsPredErr-2) > 1e-12 || math.Abs(d.MeanAbsPredErr-1) > 1e-12 {
		t.Errorf("pred err: %d samples mean %v max %v", d.PredErrSamples, d.MeanAbsPredErr, d.MaxAbsPredErr)
	}

	top := data.TopPredictionErrors(1)
	if len(top) != 1 || math.Abs(top[0].AbsError-2) > 1e-12 || top[0].Time != 1200 {
		t.Errorf("top error = %+v", top)
	}
	all := data.TopPredictionErrors(0)
	if len(all) != 3 {
		t.Errorf("unbounded top returned %d, want 3", len(all))
	}
}

func TestWinnerPredictedHottest(t *testing.T) {
	d := dec(0, 0, 1, 0.5, 27.25, 25)
	if hot, ok := d.WinnerPredictedHottest(); !ok || math.Abs(hot-27.25) > 1e-12 {
		t.Errorf("got %v/%v, want 27.25/true", hot, ok)
	}
	d.Winner = -1
	if _, ok := d.WinnerPredictedHottest(); ok {
		t.Error("hold record reported a winner prediction")
	}
	d.Winner = 99
	if _, ok := d.WinnerPredictedHottest(); ok {
		t.Error("out-of-range winner reported a prediction")
	}
}

func TestCSVSinks(t *testing.T) {
	d := dec(600, 0, 1, 0.5, 26, 25)
	data := &Data{
		Decisions: []DecisionRecord{d},
		Ticks:     []TickRecord{{Time: 0, Day: 0, OutsideTemp: 10, Mode: 1}},
	}
	var tk, dc bytes.Buffer
	if err := data.WriteTickCSV(&tk); err != nil {
		t.Fatal(err)
	}
	if err := data.WriteDecisionCSV(&dc); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(tk.String(), "\n"); lines != 2 {
		t.Errorf("tick CSV has %d lines, want header+1", lines)
	}
	if !strings.Contains(dc.String(), "controller") {
		t.Errorf("decision CSV missing source column:\n%s", dc.String())
	}
}

func TestNopRecorder(t *testing.T) {
	var n Nop
	d := dec(0, 0, 1, 0, 25, 25)
	k := TickRecord{}
	n.RecordDecision(&d) // must not panic or retain anything
	n.RecordTick(&k)
}
