// Package httpserve is the HTTP side of the observability plane: a
// small server wrapper that surfaces bind errors synchronously (the
// copy-pasted `go http.ListenAndServe` pattern it replaces could only
// log them after the fact), plus the handlers the coolair-serve daemon
// mounts — Prometheus metrics, liveness/readiness, an SSE stream
// tailing a trace.Ring, and net/http/pprof on a non-default mux.
package httpserve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"coolair/internal/trace"
)

// Server is a listening HTTP server. Start binds before returning, so
// an unusable address (port taken, bad syntax) is an error at the call
// site, not a message inside a goroutine.
type Server struct {
	srv *http.Server
	lis net.Listener
	err chan error
}

// Start binds addr and serves h on it in the background (h == nil means
// http.DefaultServeMux). The returned server reports its bound address
// via Addr — useful with ":0" — and serve-loop failures via Err.
func Start(addr string, h http.Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: bind %s: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: h}, lis: lis, err: make(chan error, 1)}
	go func() {
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.err <- err
		}
		close(s.err)
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// request was ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Err delivers a serve-loop failure, closing without a value on clean
// shutdown.
func (s *Server) Err() <-chan error { return s.err }

// Shutdown gracefully drains in-flight requests (SSE streams observe
// their request context end) within ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// PprofMux returns a fresh mux exposing the net/http/pprof handlers
// under /debug/pprof/, without touching http.DefaultServeMux.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler serves the registry in Prometheus text exposition
// format (with # HELP/# TYPE metadata).
func MetricsHandler(reg *trace.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// HealthHandler answers liveness probes: 200 whenever the process can
// serve HTTP at all.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadyHandler answers readiness probes: 200 once ready() reports true,
// 503 before (load balancers keep traffic away until the model is
// trained and the first decision has completed).
func ReadyHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}
