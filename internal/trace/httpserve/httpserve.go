// Package httpserve is the HTTP side of the observability plane: a
// small server wrapper that surfaces bind errors synchronously (the
// copy-pasted `go http.ListenAndServe` pattern it replaces could only
// log them after the fact), plus the handlers the coolair-serve daemon
// mounts — Prometheus metrics, liveness/readiness, an SSE stream
// tailing a trace.Ring, and net/http/pprof on a non-default mux.
package httpserve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"coolair/internal/trace"
)

// Server is a listening HTTP server. Start binds before returning, so
// an unusable address (port taken, bad syntax) is an error at the call
// site, not a message inside a goroutine.
type Server struct {
	srv *http.Server
	lis net.Listener
	err chan error
}

// Options tunes the server's connection hygiene. The zero value takes
// the defaults below; tests shrink the timeouts to exercise the drops.
type Options struct {
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers before being dropped (default 5s). Without it a
	// client that connects and sends nothing pins a connection forever —
	// a trivial slow-loris on a daemon meant to run for months.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections with no request in
	// flight (default 120s). SSE streams are live requests, not idle
	// connections, so the stream plane is unaffected.
	IdleTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 5 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 120 * time.Second
	}
	return o
}

// Start binds addr and serves h on it in the background (h == nil means
// http.DefaultServeMux) with the default connection hygiene. The
// returned server reports its bound address via Addr — useful with
// ":0" — and serve-loop failures via Err.
func Start(addr string, h http.Handler) (*Server, error) {
	return StartOptions(addr, h, Options{})
}

// StartOptions is Start with explicit connection-hygiene options.
func StartOptions(addr string, h http.Handler, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: bind %s: %w", addr, err)
	}
	s := &Server{
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: opts.ReadHeaderTimeout,
			IdleTimeout:       opts.IdleTimeout,
		},
		lis: lis,
		err: make(chan error, 1),
	}
	go func() {
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.err <- err
		}
		close(s.err)
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port when the
// request was ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Err delivers a serve-loop failure, closing without a value on clean
// shutdown.
func (s *Server) Err() <-chan error { return s.err }

// Shutdown gracefully drains in-flight requests (SSE streams observe
// their request context end) within ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// PprofMux returns a fresh mux exposing the net/http/pprof handlers
// under /debug/pprof/, without touching http.DefaultServeMux.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler serves the registry in Prometheus text exposition
// format (with # HELP/# TYPE metadata).
func MetricsHandler(reg *trace.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// HealthHandler answers liveness probes: 200 whenever the process can
// serve HTTP at all.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadyHandler answers readiness probes: 200 once ready() reports true,
// 503 before, with ready()'s reason as the response body (load
// balancers keep traffic away until the model is available and the
// first decision has completed; operators read the body to learn
// whether the daemon is restoring, training, or crash-looping). An
// empty reason falls back to "not ready".
func ReadyHandler(ready func() (bool, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ok, reason := ready(); !ok {
			if reason == "" {
				reason = "not ready"
			}
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}
