package httpserve

import (
	"bytes"
	"net/http"
	"sync"
	"time"
)

// Cached wraps h with a short-TTL response memo that demand-collapses
// the dashboard fan-in. A query URL is not per-client state: when 400
// dashboards poll the same /api/query range, the fleet aggregation,
// JSON encode, and gzip are identical work 400 times over — on the
// query plane that repeated render, not the store scan, is what blows
// the p99 budget. The memo renders each (URL, encoding) once per TTL
// window and replays the recorded bytes to everyone else asking within
// it; concurrent first requests for a key block on a single render
// (sync.Once) instead of racing N copies of it.
//
// The TTL trades staleness for load shed. Series buckets advance once
// per simulated minute at the finest resolution, so a sub-second memo
// is invisible to chart consumers — same reasoning as the SSE
// renderCache, applied one layer up.
//
// Replayed responses are byte-for-byte what the inner handler wrote —
// including negotiated gzip bodies, which is why the encoding is part
// of the key — so the plain-output identity pinned by the gzip tests
// holds through the memo. Error responses (bad range, unknown site)
// are memoized too: a dashboard retry-looping a typo'd URL is exactly
// the repeated identical traffic the memo exists to absorb.

// DefaultQueryCacheTTL is the memo window the daemons mount query and
// alert endpoints with. One second keeps a 64-site fleet's render rate
// bounded by the count of distinct dashboard URLs rather than the
// client population.
const DefaultQueryCacheTTL = time.Second

// memoMaxEntries bounds the memo map. Real dashboard populations cycle
// a small fixed URL set; only adversarial query strings approach the
// cap, at which point the memo resets wholesale — correctness never
// depends on an entry surviving.
const memoMaxEntries = 256

// cachedResponse is one rendered response. The once gate doubles as
// the publication barrier: waiters that lose the render race observe
// the filled fields through Once's happens-before edge.
type cachedResponse struct {
	once     sync.Once
	header   http.Header
	code     int
	body     []byte
	deadline time.Time
}

type responseMemo struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[string]*cachedResponse
}

// lookup returns the live entry for key, minting a fresh one when the
// key is absent or its window has lapsed.
func (m *responseMemo) lookup(key string, now time.Time) *cachedResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok && now.Before(e.deadline) {
		return e
	}
	if len(m.entries) >= memoMaxEntries {
		m.entries = make(map[string]*cachedResponse, memoMaxEntries)
	}
	e := &cachedResponse{deadline: now.Add(m.ttl)}
	m.entries[key] = e
	return e
}

// memoRecorder captures the inner handler's response for replay. It
// deliberately implements only http.ResponseWriter: query handlers
// write complete bodies, and a Flush no-op inside the recorder is
// harmless (Gzip's flusher forwarding type-asserts before calling).
type memoRecorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *memoRecorder) Header() http.Header { return r.header }

func (r *memoRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *memoRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

// Cached returns h wrapped in a response memo with the given TTL. Wrap
// outside Gzip so the memo stores the negotiated encoding and replays
// skip the compressor too. Never wrap a streaming handler: the
// recorder buffers the whole body before anything reaches the client.
func Cached(ttl time.Duration, h http.Handler) http.Handler {
	memo := &responseMemo{ttl: ttl, entries: make(map[string]*cachedResponse)}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Path + "?" + r.URL.RawQuery
		if acceptsGzip(r.Header.Get("Accept-Encoding")) {
			key += "\x00gzip"
		}
		e := memo.lookup(key, time.Now())
		e.once.Do(func() {
			rec := &memoRecorder{header: make(http.Header)}
			h.ServeHTTP(rec, r)
			if rec.code == 0 {
				rec.code = http.StatusOK
			}
			e.header, e.code, e.body = rec.header, rec.code, rec.body.Bytes()
		})
		hdr := w.Header()
		for k, vs := range e.header {
			hdr[k] = vs
		}
		w.WriteHeader(e.code)
		_, _ = w.Write(e.body)
	})
}
