package httpserve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coolair/internal/trace"
	"coolair/internal/trace/series"
)

// queryPlane assembles a mounted site plane with a populated series
// store and a firing alert.
func queryPlane(t *testing.T) (*httptest.Server, *series.DB) {
	t.Helper()
	ring := trace.NewRing(8, 8)
	db := series.NewDB(series.FleetConfig())
	id := db.Register(series.MetricInletMax)
	for i := 0; i < 100; i++ {
		db.Append(id, float64(i)*60, 20+float64(i%8))
	}
	engine := series.NewEngine(db, []series.Rule{{
		Name: "hot", Metric: series.MetricInletMax, Agg: series.AggMax,
		Op: series.OpAbove, Threshold: 25, Window: 1e6,
	}}, ring.Metrics(), 60)
	engine.Evaluate(6000)

	mux := http.NewServeMux()
	MountSitePlane(mux, "", SitePlane{
		Ring: ring, Ready: func() (bool, string) { return true, "" },
		DB: db, Alerts: engine,
	})
	mux.Handle("/dashboard", DashboardHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, db
}

func TestQueryEndpoint(t *testing.T) {
	srv, _ := queryPlane(t)
	var body QueryResponse
	getDecode(t, srv.URL+"/api/query?metric="+series.MetricInletMax+"&from=0&to=6000&step=60", &body)
	if len(body.Series) != 1 || body.Series[0].Metric != series.MetricInletMax {
		t.Fatalf("series = %+v", body.Series)
	}
	if got := body.Series[0]; got.Res != 60 || len(got.Points) == 0 {
		t.Fatalf("res=%g points=%d, want 60s buckets with data", got.Res, len(got.Points))
	}
}

func TestQueryEndpointListsMetrics(t *testing.T) {
	srv, db := queryPlane(t)
	var body struct {
		Metrics []string `json:"metrics"`
	}
	getDecode(t, srv.URL+"/api/query", &body)
	if len(body.Metrics) != len(db.Metrics()) || body.Metrics[0] != series.MetricInletMax {
		t.Fatalf("metrics = %v", body.Metrics)
	}
}

func TestQueryEndpointBadRange(t *testing.T) {
	srv, _ := queryPlane(t)
	for _, q := range []string{
		"metric=x&from=oops", "metric=x&to=oops", "metric=x&step=-1", "metric=x&from=100&to=50",
	} {
		resp, err := http.Get(srv.URL + "/api/query?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s -> %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestAlertsEndpoint(t *testing.T) {
	srv, _ := queryPlane(t)
	var body AlertsResponse
	getDecode(t, srv.URL+"/api/alerts", &body)
	if body.Firing != 1 || len(body.Alerts) != 1 || body.Alerts[0].State != "firing" {
		t.Fatalf("alerts body = %+v, want one firing rule", body)
	}
	if len(body.Events) != 1 || body.Events[0].State != "firing" {
		t.Fatalf("events = %+v", body.Events)
	}
}

func TestFleetQueryEndpoint(t *testing.T) {
	dbs := map[string]*series.DB{}
	for _, site := range []string{"a", "b"} {
		db := series.NewDB(series.FleetConfig())
		id := db.Register("m")
		db.Append(id, 30, 10)
		dbs[site] = db
	}
	h := FleetQueryHandler(func() map[string]*series.DB { return dbs }, func() float64 { return 60 })
	srv := httptest.NewServer(h)
	defer srv.Close()

	var body FleetQueryResponse
	getDecode(t, srv.URL+"?metric=m&from=0&to=60", &body)
	if len(body.Series) != 1 || len(body.Series[0].Points) != 1 {
		t.Fatalf("fleet body = %+v", body)
	}
	if p := body.Series[0].Points[0]; p.Sites != 2 || p.Mean != 10 {
		t.Fatalf("fleet point = %+v, want sites=2 mean=10", p)
	}

	// ?site= scopes to one site with the site-shaped body.
	var one QueryResponse
	getDecode(t, srv.URL+"?site=a&metric=m&from=0&to=60", &one)
	if len(one.Series) != 1 || len(one.Series[0].Points) != 1 {
		t.Fatalf("site-scoped body = %+v", one)
	}
	resp, err := http.Get(srv.URL + "?site=nope&metric=m")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown site -> %d, want 404", resp.StatusCode)
	}
}

func TestDashboardServed(t *testing.T) {
	srv, _ := queryPlane(t)
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"/api/query", "/api/alerts", "/stream", "canvas", "coolair"} {
		if !bytes.Contains(bytes.ToLower(page), []byte(strings.ToLower(want))) {
			t.Errorf("dashboard page lacks %q", want)
		}
	}
}

// TestGzipNegotiation: a gzip-accepting client gets a compressed body
// that decompresses to exactly the plain bytes; a plain client's bytes
// are untouched (the CI greps parse them).
func TestGzipNegotiation(t *testing.T) {
	srv, _ := queryPlane(t)
	for _, path := range []string{"/metrics", "/api/query?metric=" + series.MetricInletMax + "&from=0&to=6000"} {
		plain := rawGet(t, srv.URL+path, "")
		zipped := rawGet(t, srv.URL+path, "gzip")
		if plain.encoding != "" {
			t.Fatalf("%s: plain request got Content-Encoding %q", path, plain.encoding)
		}
		if zipped.encoding != "gzip" {
			t.Fatalf("%s: gzip request got Content-Encoding %q", path, zipped.encoding)
		}
		zr, err := gzip.NewReader(bytes.NewReader(zipped.body))
		if err != nil {
			t.Fatalf("%s: bad gzip stream: %v", path, err)
		}
		unzipped, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: decompress: %v", path, err)
		}
		if !bytes.Equal(unzipped, plain.body) {
			t.Fatalf("%s: gzip body decompresses to different bytes (%d vs %d)",
				path, len(unzipped), len(plain.body))
		}
		if len(zipped.body) >= len(plain.body) {
			t.Errorf("%s: compression did not shrink the body (%d >= %d)",
				path, len(zipped.body), len(plain.body))
		}
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=1.0", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0", false},
		{"*", true},
		{"*;q=0", false},
		{"identity", false},
		{"GZIP", false}, // encodings are case-sensitive tokens here: be strict
	}
	for _, tc := range cases {
		if got := acceptsGzip(tc.header); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %t, want %t", tc.header, got, tc.want)
		}
	}
}

// TestStreamNeverGzipped: the SSE endpoint ignores Accept-Encoding —
// compression would buffer frames and defeat the heartbeats.
func TestStreamNeverGzipped(t *testing.T) {
	srv, _ := queryPlane(t)
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("SSE stream negotiated Content-Encoding %q", enc)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

// TestKeepaliveDefaultInterval pins the idle heartbeat cadence the
// loadtest and dashboard reconnect logic assume.
func TestKeepaliveDefaultInterval(t *testing.T) {
	if defaultKeepalive != 15*time.Second {
		t.Fatalf("defaultKeepalive = %v, want 15s", defaultKeepalive)
	}
}

// TestKeepaliveRepeatsAndYieldsToRecords: an idle stream heartbeats
// repeatedly, and a record arriving after heartbeats is framed with the
// correct cursor (comments never disturb event ids).
func TestKeepaliveRepeatsAndYieldsToRecords(t *testing.T) {
	ring := trace.NewRing(4, 4)
	srv := httptest.NewServer(&StreamHandler{Ring: ring, Keepalive: 20 * time.Millisecond})
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	comments := 0
	for comments < 3 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasPrefix(line, ":"):
			comments++
		case strings.TrimSpace(line) == "":
		default:
			t.Fatalf("idle stream emitted %q before any record", line)
		}
	}

	rec := trace.DecisionRecord{Time: 42, Winner: -1, Hold: true}
	ring.RecordDecision(&rec)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(line, "id: ") {
			if got := strings.TrimSpace(strings.TrimPrefix(line, "id: ")); got != "1-0" {
				t.Fatalf("first record after heartbeats has id %q, want 1-0", got)
			}
			return
		}
	}
	t.Fatal("no record framed after heartbeats")
}

type rawResponse struct {
	body     []byte
	encoding string
}

// rawGet fetches without the transport's transparent decompression so
// the wire bytes are observable.
func rawGet(t *testing.T, url, acceptEncoding string) rawResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{body: body, encoding: resp.Header.Get("Content-Encoding")}
}

func getDecode(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
