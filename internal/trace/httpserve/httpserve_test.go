package httpserve

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coolair/internal/trace"
)

// TestStartSurfacesBindErrors: the whole point of Start over a bare
// `go http.ListenAndServe` is that an unusable address fails at the
// call site.
func TestStartSurfacesBindErrors(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatalf("Start on :0: %v", err)
	}
	defer s.Shutdown(context.Background())
	if s.Addr() == "" || strings.HasSuffix(s.Addr(), ":0") {
		t.Fatalf("Addr() = %q, want a concrete port", s.Addr())
	}

	// Same port again: the second bind must fail synchronously.
	if _, err := Start(s.Addr(), http.NewServeMux()); err == nil {
		t.Fatal("Start on an occupied port returned nil error")
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err, ok := <-s.Err(); ok && err != nil {
		t.Fatalf("clean shutdown delivered serve error %v", err)
	}
}

// TestStalledHeaderDropped: a connection that opens and never finishes
// its request headers is dropped at ReadHeaderTimeout instead of
// pinning a connection on a daemon meant to run for months.
func TestStalledHeaderDropped(t *testing.T) {
	s, err := StartOptions("127.0.0.1:0", http.NewServeMux(), Options{
		ReadHeaderTimeout: 100 * time.Millisecond,
		IdleTimeout:       time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dribble an incomplete request line and stall.
	if _, err := conn.Write([]byte("GET /healthz HTT")); err != nil {
		t.Fatal(err)
	}
	// The server answers the stall with 408 (or nothing) and closes;
	// reaching EOF before the read deadline proves the drop. Without
	// ReadHeaderTimeout this read would sit until the deadline fired.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("stalled connection was not dropped: read err %v", err)
	}
}

func TestHealthAndReadyHandlers(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}

	ready := false
	h := ReadyHandler(func() (bool, string) { return ready, "model training" })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "model training") {
		t.Fatalf("readyz 503 body = %q, want the reason", rec.Body.String())
	}
	ready = true
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after ready = %d, want 200", rec.Code)
	}
}

func TestMetricsHandler(t *testing.T) {
	ring := trace.NewRing(8, 8)
	ring.RecordTick(&trace.TickRecord{Time: 60, InletMax: 27.5})
	rec := httptest.NewRecorder()
	MetricsHandler(ring.Metrics()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"# TYPE ticks_total counter", "ticks_total 1", "inlet_max_celsius 27.5"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}

func TestPprofMux(t *testing.T) {
	rec := httptest.NewRecorder()
	PprofMux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: code %d", rec.Code)
	}
}

// sseEvent is one parsed frame from a text/event-stream body.
type sseEvent struct {
	event string
	id    string
	data  string
}

// readEvents consumes n events (ignoring comment keepalives) from an
// SSE stream.
func readEvents(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d events: %v", len(out), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.data != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected stream line %q", line)
		}
	}
	return out
}

func streamServer(ring *trace.Ring) *httptest.Server {
	return httptest.NewServer(&StreamHandler{Ring: ring, Keepalive: 50 * time.Millisecond})
}

// TestStreamReplayAndLive: a fresh client replays the retained window,
// then receives records appended while connected; decision payloads
// round-trip through the JSONL decoder.
func TestStreamReplayAndLive(t *testing.T) {
	ring := trace.NewRing(16, 16)
	d := &trace.DecisionRecord{Time: 120, Source: trace.SourceController, Winner: -1, BandLo: 18, BandHi: 23}
	ring.RecordDecision(d)
	ring.RecordTick(&trace.TickRecord{Time: 60, InletMax: 26})

	srv := streamServer(ring)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stream?ticks=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	evs := readEvents(t, br, 2)
	if evs[0].event != "tick" || evs[1].event != "decision" {
		t.Fatalf("replay order = %s, %s; want tick, decision (merged by time)", evs[0].event, evs[1].event)
	}
	if evs[1].id != "1-1" {
		t.Fatalf("decision id = %q, want 1-1", evs[1].id)
	}
	got, err := trace.ReadJSONL(strings.NewReader(evs[1].data))
	if err != nil {
		t.Fatalf("decision payload does not decode: %v", err)
	}
	if len(got.Decisions) != 1 || got.Decisions[0] != *d {
		t.Fatalf("decision did not round-trip: %+v", got.Decisions)
	}

	// Live tail: a record appended after connect is delivered.
	ring.RecordDecision(&trace.DecisionRecord{Time: 240, Source: trace.SourceController, Winner: -1})
	evs = readEvents(t, br, 1)
	if evs[0].event != "decision" || evs[0].id != "2-1" {
		t.Fatalf("live event = %+v, want decision 2-1", evs[0])
	}
}

// TestStreamResume: reconnecting with Last-Event-ID skips everything up
// to that cursor.
func TestStreamResume(t *testing.T) {
	ring := trace.NewRing(16, 16)
	for i := 0; i < 3; i++ {
		ring.RecordDecision(&trace.DecisionRecord{Time: float64(i), Winner: -1})
	}
	srv := streamServer(ring)
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/stream", nil)
	req.Header.Set("Last-Event-ID", "2-0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := readEvents(t, bufio.NewReader(resp.Body), 1)
	if evs[0].id != "3-0" {
		t.Fatalf("resumed stream delivered id %q first, want 3-0", evs[0].id)
	}
	var payload bytes.Buffer
	payload.WriteString(evs[0].data)
	got, err := trace.ReadJSONL(&payload)
	if err != nil || len(got.Decisions) != 1 || got.Decisions[0].Time != 2 {
		t.Fatalf("resumed record = %+v (err %v), want the Time=2 decision", got, err)
	}
}

// TestStreamSlowClientDrops: when the ring laps a client's cursor the
// stream reports a dropped event and the registry counter advances.
func TestStreamSlowClientDrops(t *testing.T) {
	ring := trace.NewRing(4, 4)
	for i := 0; i < 10; i++ {
		ring.RecordDecision(&trace.DecisionRecord{Time: float64(i), Winner: -1})
	}
	srv := streamServer(ring)
	defer srv.Close()

	// A client that last saw decision 2 of 10 through a capacity-4 ring
	// missed decisions 3..6.
	req, _ := http.NewRequest("GET", srv.URL+"/stream", nil)
	req.Header.Set("Last-Event-ID", "2-0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := readEvents(t, bufio.NewReader(resp.Body), 2)
	if evs[0].event != "dropped" {
		t.Fatalf("first event = %q, want dropped", evs[0].event)
	}
	if !strings.Contains(evs[0].data, `"decisions":4`) {
		t.Fatalf("dropped payload = %q, want 4 dropped decisions", evs[0].data)
	}
	if evs[1].event != "decision" || evs[1].id != "7-0" {
		t.Fatalf("first record after drop = %+v, want decision 7-0", evs[1])
	}
	if got := ring.Metrics().StreamDroppedTotal.Value(); got != 4 {
		t.Fatalf("stream_dropped_total = %d, want 4", got)
	}
}

// TestStreamKeepalive: an idle stream emits comment keepalives rather
// than going silent.
func TestStreamKeepalive(t *testing.T) {
	ring := trace.NewRing(4, 4)
	srv := streamServer(ring) // 50ms keepalive
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	deadline := time.After(5 * time.Second)
	got := make(chan string, 1)
	go func() {
		line, err := br.ReadString('\n')
		if err == nil {
			got <- line
		}
	}()
	select {
	case line := <-got:
		if !strings.HasPrefix(line, ":") {
			t.Fatalf("idle stream emitted %q, want a comment keepalive", line)
		}
	case <-deadline:
		t.Fatal("no keepalive within 5s")
	}
}

// TestStreamClientDisconnect: closing the client ends the handler (the
// server does not leak the streaming goroutine past Shutdown).
func TestStreamClientDisconnect(t *testing.T) {
	ring := trace.NewRing(4, 4)
	s, err := Start("127.0.0.1:0", &StreamHandler{Ring: ring, Keepalive: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.CopyN(io.Discard, resp.Body, 1) // wait until the stream is live
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain after client disconnect: %v", err)
	}
}
