// Fleet-plane handlers: the multi-site daemon mounts one site plane per
// site under /sites/{id}/ plus a JSON /sites listing and a combined
// /metrics page. MountSitePlane is the router seam shared with the
// single-site daemon — the same helper registers /stream, /metrics, and
// /readyz whether the prefix is "" (legacy single-site URLs) or
// "/sites/<id>" (fleet), so adding the fleet surface cannot drift the
// single-site paths.
package httpserve

import (
	"encoding/json"
	"net/http"

	"coolair/internal/trace"
)

// MountSitePlane registers one site's observability endpoints on mux
// under prefix: prefix+"/metrics", prefix+"/stream", prefix+"/readyz".
// The single-site daemon mounts at prefix "" (the PR-5 URLs); the fleet
// daemon mounts each site at "/sites/<id>". Sites are known at boot, so
// the routes are plain exact-path registrations — no wildcard matching.
func MountSitePlane(mux *http.ServeMux, prefix string, ring *trace.Ring, ready func() (bool, string)) {
	mux.Handle(prefix+"/metrics", MetricsHandler(ring.Metrics()))
	mux.Handle(prefix+"/readyz", ReadyHandler(ready))
	mux.Handle(prefix+"/stream", &StreamHandler{Ring: ring})
}

// SiteStatus is one site's row in the /sites listing.
type SiteStatus struct {
	ID       string `json:"id"`
	Location string `json:"location"`
	System   string `json:"system"`
	Seed     int64  `json:"seed"`
	// Mode is the site's supervisor lifecycle state (the serve_mode
	// string: booting, restoring, degraded, running, crash-loop, ...).
	Mode  string `json:"mode"`
	Ready bool   `json:"ready"`
	// Reason explains a not-ready site ("" when ready).
	Reason string `json:"reason,omitempty"`
	// Regime is the site's effective cooling-mode code at the last
	// record (the active_regime gauge).
	Regime int `json:"regime"`
	// SimTime is the site's simulated time in absolute seconds.
	SimTime float64 `json:"sim_time_seconds"`
	// Cursor is the site's current SSE stream position
	// ("<decisions>-<ticks>"): a client passing it as Last-Event-ID
	// follows the live tail without replaying the retained window.
	Cursor string `json:"cursor,omitempty"`
	// Decisions / Restarts mirror the site's counters.
	Decisions int64 `json:"decisions"`
	Restarts  int64 `json:"restarts"`
}

// SiteList is the /sites response body.
type SiteList struct {
	Sites []SiteStatus `json:"sites"`
	Total int          `json:"total"`
	Ready int          `json:"ready"`
}

// SitesHandler serves the JSON fleet listing. snapshot is called per
// request and must return the sites in their stable boot order.
func SitesHandler(snapshot func() []SiteStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sites := snapshot()
		list := SiteList{Sites: sites, Total: len(sites)}
		for _, s := range sites {
			if s.Ready {
				list.Ready++
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
	})
}

// FleetMetricsHandler serves the combined fleet exposition: fleet-level
// aggregates plus every site's registry labeled site="<id>". snapshot
// is called per request.
func FleetMetricsHandler(snapshot func() []trace.SiteSeries) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = trace.WriteFleetPrometheus(w, snapshot())
	})
}
