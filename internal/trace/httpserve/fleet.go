// Fleet-plane handlers: the multi-site daemon mounts one site plane per
// site under /sites/{id}/ plus a JSON /sites listing and a combined
// /metrics page. MountSitePlane is the router seam shared with the
// single-site daemon — the same helper registers /stream, /metrics, and
// /readyz whether the prefix is "" (legacy single-site URLs) or
// "/sites/<id>" (fleet), so adding the fleet surface cannot drift the
// single-site paths.
package httpserve

import (
	"encoding/json"
	"net/http"

	"coolair/internal/trace"
	"coolair/internal/trace/series"
)

// SitePlane is one site's observability surface: the flight-recorder
// ring (metrics + SSE stream), the readiness probe, and — when the
// site has a time-series plane — its store and alert engine.
type SitePlane struct {
	Ring  *trace.Ring
	Ready func() (bool, string)
	// DB, when non-nil, mounts /api/query over the site's series store.
	DB *series.DB
	// Alerts, when non-nil, mounts /api/alerts over the SLO engine.
	Alerts *series.Engine
	// Proc, when non-nil, appends the process self-telemetry to this
	// plane's /metrics page. Set it on the daemon's root plane only —
	// process stats are per-process, not per-site.
	Proc *trace.Proc
}

// MountSitePlane registers one site's observability endpoints on mux
// under prefix: prefix+"/metrics", prefix+"/stream", prefix+"/readyz",
// and (when the plane carries them) prefix+"/api/query" and
// prefix+"/api/alerts". The single-site daemon mounts at prefix ""
// (the PR-5 URLs); the fleet daemon mounts each site at "/sites/<id>".
// Sites are known at boot, so the routes are plain exact-path
// registrations — no wildcard matching. Text/JSON endpoints are gzip-
// negotiated; the SSE stream never is (compression would buffer
// frames and defeat the heartbeats).
func MountSitePlane(mux *http.ServeMux, prefix string, p SitePlane) {
	metrics := MetricsHandler(p.Ring.Metrics())
	if p.Proc != nil {
		reg, proc := p.Ring.Metrics(), p.Proc
		metrics = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
			_ = proc.WritePrometheus(w)
		})
	}
	mux.Handle(prefix+"/metrics", Gzip(metrics))
	mux.Handle(prefix+"/readyz", ReadyHandler(p.Ready))
	mux.Handle(prefix+"/stream", &StreamHandler{Ring: p.Ring})
	if p.DB != nil {
		reg := p.Ring.Metrics()
		mux.Handle(prefix+"/api/query", Cached(DefaultQueryCacheTTL, Gzip(QueryHandler(p.DB, func() float64 {
			return reg.SimTimeSeconds.Value()
		}))))
	}
	if p.Alerts != nil {
		mux.Handle(prefix+"/api/alerts", Cached(DefaultQueryCacheTTL, Gzip(AlertsHandler(p.Alerts))))
	}
}

// SiteStatus is one site's row in the /sites listing.
type SiteStatus struct {
	ID       string `json:"id"`
	Location string `json:"location"`
	System   string `json:"system"`
	Seed     int64  `json:"seed"`
	// Mode is the site's supervisor lifecycle state (the serve_mode
	// string: booting, restoring, degraded, running, crash-loop, ...).
	Mode  string `json:"mode"`
	Ready bool   `json:"ready"`
	// Reason explains a not-ready site ("" when ready).
	Reason string `json:"reason,omitempty"`
	// Regime is the site's effective cooling-mode code at the last
	// record (the active_regime gauge).
	Regime int `json:"regime"`
	// SimTime is the site's simulated time in absolute seconds.
	SimTime float64 `json:"sim_time_seconds"`
	// Cursor is the site's current SSE stream position
	// ("<decisions>-<ticks>"): a client passing it as Last-Event-ID
	// follows the live tail without replaying the retained window.
	Cursor string `json:"cursor,omitempty"`
	// Decisions / Restarts mirror the site's counters.
	Decisions int64 `json:"decisions"`
	Restarts  int64 `json:"restarts"`
}

// SiteList is the /sites response body.
type SiteList struct {
	Sites []SiteStatus `json:"sites"`
	Total int          `json:"total"`
	Ready int          `json:"ready"`
}

// SitesHandler serves the JSON fleet listing. snapshot is called per
// request and must return the sites in their stable boot order.
func SitesHandler(snapshot func() []SiteStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sites := snapshot()
		list := SiteList{Sites: sites, Total: len(sites)}
		for _, s := range sites {
			if s.Ready {
				list.Ready++
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(list)
	})
}

// FleetMetricsHandler serves the combined fleet exposition: fleet-level
// aggregates plus every site's registry labeled site="<id>". snapshot
// is called per request. proc (may be nil) appends the process
// self-telemetry — one copy for the whole page, since the fleet shares
// a process.
func FleetMetricsHandler(snapshot func() []trace.SiteSeries, proc *trace.Proc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = trace.WriteFleetPrometheus(w, snapshot())
		if proc != nil {
			_ = proc.WritePrometheus(w)
		}
	})
}
