package httpserve

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the embedded, dependency-free live dashboard: a
// world heatmap of sites colored by cooling regime and alert state,
// per-site sparklines fed from /api/query, and live updates riding the
// existing SSE stream cursors. One self-contained page — no external
// scripts, fonts, or build step — so it works from an air-gapped
// daemon and adds nothing to the deploy.
//
//go:embed dashboard.html
var dashboardHTML []byte

// DashboardHandler serves the embedded dashboard page. The page
// adapts to its host at runtime: /sites answering means fleet mode,
// a 404 means the legacy single-site daemon (same endpoints, root
// prefix).
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(dashboardHTML)
	})
}
