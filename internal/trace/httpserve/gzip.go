package httpserve

import (
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Gzip transparently compresses responses for clients that advertise
// gzip in Accept-Encoding. A fleet /metrics page is hundreds of
// kilobytes of highly repetitive text — site-labeled series compress
// ~20×, which matters when a thousand scrapers poll it. Writers come
// from a pool so a scrape burst doesn't allocate a fresh compressor
// per request. A client that doesn't accept gzip gets the inner
// handler's bytes untouched (pinned byte-identical by test), so plain
// curl and exposition-format parsers see exactly the PR-5 output.
//
// Never wrap an SSE handler: compression buffers frames and defeats
// the keep-alive heartbeats.

// gzipPool recycles gzip writers across requests. BestSpeed: the
// output is scraped once and discarded, so the extra ratio of higher
// levels is not worth the CPU under scrape load.
var gzipPool = sync.Pool{New: func() any {
	zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
	return zw
}}

// acceptsGzip parses an Accept-Encoding header: gzip must be listed
// (or covered by a wildcard) with a non-zero quality value.
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		enc, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		enc = strings.TrimSpace(enc)
		if enc != "gzip" && enc != "*" {
			continue
		}
		if !hasQ {
			return true
		}
		q = strings.TrimSpace(q)
		if v, ok := strings.CutPrefix(q, "q="); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			return err != nil || f > 0
		}
		return true
	}
	return false
}

// gzipResponseWriter wraps the response, deferring the gzip writer
// until the first body byte so error paths (http.Error from an inner
// handler) still negotiate correctly.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw *gzip.Writer
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) { return g.zw.Write(p) }

// Flush forwards to the underlying flusher after draining the
// compressor, preserving incremental delivery for handlers that flush.
func (g *gzipResponseWriter) Flush() {
	_ = g.zw.Flush()
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Gzip wraps h with Accept-Encoding-negotiated gzip compression.
func Gzip(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !acceptsGzip(r.Header.Get("Accept-Encoding")) {
			h.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Add("Vary", "Accept-Encoding")
		zw := gzipPool.Get().(*gzip.Writer)
		zw.Reset(w)
		gw := &gzipResponseWriter{ResponseWriter: w, zw: zw}
		h.ServeHTTP(gw, r)
		_ = zw.Close()
		gzipPool.Put(zw)
	})
}
