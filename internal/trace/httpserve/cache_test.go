package httpserve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memoGet fetches without transparent decompression so the wire bytes
// and negotiated headers are observable.
func memoGet(t *testing.T, url string, gzip bool) (body []byte, header http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Always pin the header: left unset, the transport silently adds
	// "Accept-Encoding: gzip" and transparently decompresses, hiding
	// the wire encoding this helper exists to observe.
	if gzip {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header
}

// countingHandler renders a body that embeds how many times it has run,
// so a replayed response is distinguishable from a fresh render.
func countingHandler(calls *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"render": %d, "path": %q}`, n, r.URL.Path)
	})
}

func TestCachedCollapsesIdenticalRequests(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(Cached(time.Minute, countingHandler(&calls)))
	defer srv.Close()

	first, _ := memoGet(t, srv.URL+"/api/query?metric=a", false)
	second, hdr := memoGet(t, srv.URL+"/api/query?metric=a", false)
	if got := calls.Load(); got != 1 {
		t.Fatalf("identical URLs rendered %d times, want 1", got)
	}
	if string(first) != string(second) {
		t.Fatalf("replayed body differs:\n%s\nvs\n%s", first, second)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("replay lost Content-Type: %q", ct)
	}

	memoGet(t, srv.URL+"/api/query?metric=b", false)
	if got := calls.Load(); got != 2 {
		t.Fatalf("distinct query string should render fresh: %d calls, want 2", got)
	}
}

// TestCachedKeysOnEncoding pins that gzip-negotiated and plain clients
// get separate memo entries: replaying a compressed body to a plain
// client (or vice versa) would corrupt the response.
func TestCachedKeysOnEncoding(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(Cached(time.Minute, Gzip(countingHandler(&calls))))
	defer srv.Close()

	_, plainHdr := memoGet(t, srv.URL+"/api/query?metric=a", false)
	if enc := plainHdr.Get("Content-Encoding"); enc != "" {
		t.Fatalf("plain client got Content-Encoding %q", enc)
	}
	_, gzHdr := memoGet(t, srv.URL+"/api/query?metric=a", true)
	if enc := gzHdr.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip client got Content-Encoding %q, want gzip", enc)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("plain and gzip variants should each render once: %d calls, want 2", got)
	}
	// Replays within the window serve the stored variant.
	memoGet(t, srv.URL+"/api/query?metric=a", false)
	memoGet(t, srv.URL+"/api/query?metric=a", true)
	if got := calls.Load(); got != 2 {
		t.Fatalf("variant replays re-rendered: %d calls, want 2", got)
	}
}

func TestCachedExpires(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(Cached(time.Millisecond, countingHandler(&calls)))
	defer srv.Close()

	memoGet(t, srv.URL+"/api/query?metric=a", false)
	time.Sleep(5 * time.Millisecond)
	memoGet(t, srv.URL+"/api/query?metric=a", false)
	if got := calls.Load(); got != 2 {
		t.Fatalf("lapsed entry should re-render: %d calls, want 2", got)
	}
}

// TestCachedSingleFlight pins the thundering-herd behavior: concurrent
// first requests for one key produce exactly one inner render, with
// every waiter served the same bytes.
func TestCachedSingleFlight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
		fmt.Fprint(w, "rendered once")
	})
	srv := httptest.NewServer(Cached(time.Minute, slow))
	defer srv.Close()

	const clients = 16
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/api/query")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 64)
			n, _ := resp.Body.Read(buf)
			bodies[i] = string(buf[:n])
		}(i)
	}
	// Let the herd pile up on the in-flight render, then release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("concurrent identical requests rendered %d times, want 1", got)
	}
	for i, b := range bodies {
		if b != "rendered once" {
			t.Fatalf("client %d got %q", i, b)
		}
	}
}

// TestCachedPreservesStatus pins that non-200 responses replay with
// their original status code — a memoized 400 must not turn into a 200.
func TestCachedPreservesStatus(t *testing.T) {
	var calls atomic.Int64
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad range", http.StatusBadRequest)
	})
	srv := httptest.NewServer(Cached(time.Minute, bad))
	defer srv.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/api/query?from=nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("error response should memoize too: %d calls, want 1", got)
	}
}
