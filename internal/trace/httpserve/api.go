// Query-plane handlers: /api/query serves the site's time-series store
// (internal/trace/series) as JSON with automatic resolution selection,
// /api/alerts the SLO engine's live rule states and transition events.
// Both are plain GET endpoints designed for the embedded dashboard and
// for curl — parameters are query terms, output is indented JSON.
package httpserve

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"coolair/internal/trace/series"
)

// QueryResponse is the /api/query body: one Result per requested
// metric, tagged with the sim-time "now" the range was resolved
// against.
type QueryResponse struct {
	Now    float64         `json:"now"`
	Series []series.Result `json:"series"`
}

// parseQueryRange extracts the from/to/step/max_points terms. now is
// the site's current sim time.
func parseQueryRange(r *http.Request, now float64) (series.Range, error) {
	q := r.URL.Query()
	rg, err := series.ParseRange(q.Get("from"), q.Get("to"), q.Get("step"), now)
	if err != nil {
		return rg, err
	}
	if mp := q.Get("max_points"); mp != "" {
		n, err := strconv.Atoi(mp)
		if err != nil || n <= 0 {
			return rg, err
		}
		rg.MaxPoints = n
	}
	return rg, nil
}

// splitMetrics parses the metric= term (comma-separated list).
func splitMetrics(r *http.Request) []string {
	var out []string
	for _, m := range strings.Split(r.URL.Query().Get("metric"), ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// QueryHandler serves one site's /api/query. now() supplies the
// current sim time (the sim_time_seconds gauge); db is the site's
// store. GET /api/query?metric=a,b&from=now-1h&to=now&step=60
// — omit metric to list the registered metric names instead.
func QueryHandler(db *series.DB, now func() float64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metrics := splitMetrics(r)
		if len(metrics) == 0 {
			writeJSON(w, map[string]any{"metrics": db.Metrics()})
			return
		}
		n := now()
		rg, err := parseQueryRange(r, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := QueryResponse{Now: n, Series: make([]series.Result, 0, len(metrics))}
		for _, m := range metrics {
			resp.Series = append(resp.Series, db.Query(m, rg))
		}
		writeJSON(w, resp)
	})
}

// AlertsResponse is the /api/alerts body.
type AlertsResponse struct {
	Firing int            `json:"firing"`
	Alerts []series.Alert `json:"alerts"`
	Events []series.Event `json:"events"`
}

// AlertsHandler serves one site's /api/alerts: every rule's live state
// plus the retained transition events (oldest first).
func AlertsHandler(engine *series.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, AlertsResponse{
			Firing: engine.FiringCount(),
			Alerts: engine.Alerts(),
			Events: engine.Events(),
		})
	})
}

// FleetQueryResponse is the fleet /api/query body: cross-site
// aggregates per bucket (min/mean/max/p99 over per-site bucket means).
type FleetQueryResponse struct {
	Now    float64              `json:"now"`
	Series []series.FleetResult `json:"series"`
}

// FleetQueryHandler serves the fleet-root /api/query. dbs() snapshots
// the per-site stores; now() the fleet sim time. ?site=<id> scopes the
// query to one site (same shape as the site endpoint); without it the
// response is the cross-site aggregate.
func FleetQueryHandler(dbs func() map[string]*series.DB, now func() float64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		all := dbs()
		if site := r.URL.Query().Get("site"); site != "" {
			db, ok := all[site]
			if !ok {
				http.Error(w, "unknown site "+strconv.Quote(site), http.StatusNotFound)
				return
			}
			QueryHandler(db, now).ServeHTTP(w, r)
			return
		}
		metrics := splitMetrics(r)
		if len(metrics) == 0 {
			names := map[string]bool{}
			for _, db := range all {
				for _, m := range db.Metrics() {
					names[m] = true
				}
			}
			out := make([]string, 0, len(names))
			for m := range names {
				out = append(out, m)
			}
			sort.Strings(out) // deterministic listing regardless of map order
			writeJSON(w, map[string]any{"metrics": out})
			return
		}
		n := now()
		rg, err := parseQueryRange(r, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := FleetQueryResponse{Now: n, Series: make([]series.FleetResult, 0, len(metrics))}
		for _, m := range metrics {
			resp.Series = append(resp.Series, series.FleetQuery(all, m, rg))
		}
		writeJSON(w, resp)
	})
}

// FleetAlertsResponse is the fleet /api/alerts body: per-site alert
// status keyed by site id, plus the fleet-wide firing count.
type FleetAlertsResponse struct {
	Firing int                       `json:"firing"`
	Sites  map[string]AlertsResponse `json:"sites"`
}

// FleetAlertsHandler serves the fleet-root /api/alerts. engines()
// snapshots the per-site alert engines. ?site=<id> scopes to one site.
func FleetAlertsHandler(engines func() map[string]*series.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		all := engines()
		if site := r.URL.Query().Get("site"); site != "" {
			e, ok := all[site]
			if !ok {
				http.Error(w, "unknown site "+strconv.Quote(site), http.StatusNotFound)
				return
			}
			AlertsHandler(e).ServeHTTP(w, r)
			return
		}
		resp := FleetAlertsResponse{Sites: make(map[string]AlertsResponse, len(all))}
		for id, e := range all {
			ar := AlertsResponse{Firing: e.FiringCount(), Alerts: e.Alerts(), Events: e.Events()}
			resp.Firing += ar.Firing
			resp.Sites[id] = ar
		}
		writeJSON(w, resp)
	})
}
