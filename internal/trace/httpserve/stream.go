package httpserve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"coolair/internal/trace"
)

// defaultKeepalive is how often an idle stream emits an SSE comment so
// proxies and clients know the connection is alive.
const defaultKeepalive = 15 * time.Second

// StreamHandler serves the ring as a Server-Sent Events stream: each
// retained record, then each new one as it lands, framed as an SSE
// event ("decision" or "tick") whose data line is the record's JSONL
// encoding — the same wire format archived traces use, so a stream
// consumer can feed lines straight into the JSONL decoder.
//
// Event ids encode the ring cursor after the event as
// "<decisions>-<ticks>", and a reconnecting client's Last-Event-ID
// header resumes from that position. A client slower than the writer
// does not buffer without bound: the ring overwrites, the stream emits
// a "dropped" event with the per-kind skip counts, and the registry's
// stream_dropped_total counter advances.
//
// Ticks are high-volume, so the stream carries decisions only unless
// the request asks for ?ticks=1.
type StreamHandler struct {
	Ring *trace.Ring
	// Keepalive overrides the idle-comment interval (0 means 15s).
	Keepalive time.Duration

	// render memoizes recent decision encodings across this handler's
	// connections (lazily built; the zero handler works).
	renderOnce sync.Once
	render     *renderCache
}

// renderCacheSlots bounds the per-handler render cache. It only needs
// to cover the window concurrent clients replay in near-lockstep; a
// miss just pays the one-connection marshal cost again.
const renderCacheSlots = 128

// renderCache memoizes the JSONL encoding of recent decision records by
// ring sequence number, so a site fanning out to many SSE clients
// marshals each record once instead of once per connection. Sequence
// numbers are monotonic and never reused, which makes a filled slot
// unambiguous: it either holds exactly this seq's bytes or another
// seq's. Cached slices are read-only by contract.
type renderCache struct {
	mu   sync.Mutex
	seq  []uint64 // 0 = empty (decision seqs start at 1)
	data [][]byte
}

func (h *StreamHandler) renderCache() *renderCache {
	h.renderOnce.Do(func() {
		h.render = &renderCache{
			seq:  make([]uint64, renderCacheSlots),
			data: make([][]byte, renderCacheSlots),
		}
	})
	return h.render
}

// rendered returns the JSONL encoding of d, from cache when another
// connection already rendered this seq. Two racing misses both marshal
// and store equal bytes — wasteful but correct.
func (c *renderCache) rendered(seq uint64, d *trace.DecisionRecord) ([]byte, error) {
	slot := seq % uint64(len(c.seq))
	c.mu.Lock()
	if c.seq[slot] == seq {
		b := c.data[slot]
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()
	b, err := trace.AppendDecisionJSONL(nil, d)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.seq[slot], c.data[slot] = seq, b
	c.mu.Unlock()
	return b, nil
}

func (h *StreamHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	keepalive := h.Keepalive
	if keepalive <= 0 {
		keepalive = defaultKeepalive
	}
	includeTicks := r.URL.Query().Get("ticks") == "1"

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// A fresh client starts from the zero cursor and replays the ring's
	// retained window; a reconnecting one resumes from its last id.
	cur := parseCursor(r.Header.Get("Last-Event-ID"))

	ctx := r.Context()
	rc := h.renderCache()
	var decBuf [64]trace.DecisionRecord
	var tickBuf [256]trace.TickRecord
	var data []byte
	for {
		nd, skD, next := h.Ring.TailDecisions(cur, decBuf[:])
		var nt int
		var skT uint64
		if includeTicks {
			nt, skT, next = h.Ring.TailTicks(next, tickBuf[:])
		} else {
			// Pin the tick cursor to the live end so untailed ticks don't
			// spin the wait loop below.
			next.Ticks = h.Ring.Cursor().Ticks
		}

		if skD+skT > 0 {
			h.Ring.Metrics().StreamDroppedTotal.Add(int64(skD + skT))
			if err := writeEvent(w, "dropped", formatCursor(trace.Cursor{Decisions: cur.Decisions + skD, Ticks: cur.Ticks + skT}),
				[]byte(fmt.Sprintf(`{"decisions":%d,"ticks":%d}`, skD, skT))); err != nil {
				return
			}
		}

		// Merge the two batches by record time (tick first on a tie, since
		// the tick at an instant is the state the decision saw), tracking
		// the per-kind sequence position for event ids.
		idD, idT := cur.Decisions+skD, cur.Ticks+skT
		i, j := 0, 0
		for i < nd || j < nt {
			takeTick := j < nt && (i >= nd || tickBuf[j].Time <= decBuf[i].Time)
			var err error
			if takeTick {
				data, err = trace.AppendTickJSONL(data[:0], &tickBuf[j])
				j++
				idT++
			} else {
				idD++
				data, err = rc.rendered(idD, &decBuf[i])
				i++
			}
			if err != nil {
				continue
			}
			kind := "decision"
			if takeTick {
				kind = "tick"
			}
			if err := writeEvent(w, kind, formatCursor(trace.Cursor{Decisions: idD, Ticks: idT}), data); err != nil {
				return
			}
		}
		cur = next
		if nd > 0 || nt > 0 {
			fl.Flush()
			continue
		}

		// Idle: wait for the ring to move, emitting a keepalive comment
		// when nothing arrives within the interval.
		waitCtx, cancel := context.WithTimeout(ctx, keepalive)
		err := h.Ring.WaitForMore(waitCtx, cur)
		cancel()
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			if _, werr := fmt.Fprint(w, ": keepalive\n\n"); werr != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeEvent frames one SSE event. The data is a single JSONL line
// (record encodings contain no newlines).
func writeEvent(w http.ResponseWriter, event, id string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\nid: %s\ndata: %s\n\n", event, id, data)
	return err
}

// formatCursor renders a ring cursor as an SSE event id.
func formatCursor(c trace.Cursor) string {
	return strconv.FormatUint(c.Decisions, 10) + "-" + strconv.FormatUint(c.Ticks, 10)
}

// parseCursor decodes a Last-Event-ID header. Anything malformed (or
// absent) yields the zero cursor, i.e. a full replay of the retained
// window — the safe default for a client whose id came from a previous
// daemon instance.
func parseCursor(s string) trace.Cursor {
	d, t, ok := strings.Cut(s, "-")
	if !ok {
		return trace.Cursor{}
	}
	dv, err1 := strconv.ParseUint(d, 10, 64)
	tv, err2 := strconv.ParseUint(t, 10, 64)
	if err1 != nil || err2 != nil {
		return trace.Cursor{}
	}
	return trace.Cursor{Decisions: dv, Ticks: tv}
}
