package trace

import "sort"

// DaySummary aggregates one simulated day's decisions for the
// coolair-trace inspector.
type DaySummary struct {
	Day int
	// Decisions counts controller records; Holds those among them that
	// held the plant state; GuardActions the guard annotation records.
	Decisions, Holds, GuardActions int
	// ModeDecisions histograms the chosen cooling mode (indexed by the
	// mode's integer code; codes ≥ len are folded into the last slot).
	ModeDecisions [8]int
	// MeanWinnerPenalty and MaxWinnerPenalty summarize the winning
	// candidates' scores over non-hold decisions.
	MeanWinnerPenalty, MaxWinnerPenalty float64
	// MeanAbsPredErr and MaxAbsPredErr summarize |predicted − realized|
	// hottest-inlet error between this day's consecutive decisions.
	MeanAbsPredErr, MaxAbsPredErr float64
	// PredErrSamples is the number of paired decisions behind the
	// prediction-error stats.
	PredErrSamples int
}

// DaySummaries folds the decision records into per-day aggregates,
// ordered by day. Records must be in chronological order (as drained
// from a Ring or decoded from a trace file).
func (t *Data) DaySummaries() []DaySummary {
	byDay := map[int]*DaySummary{}
	order := []int{}
	get := func(day int) *DaySummary {
		s := byDay[day]
		if s == nil {
			s = &DaySummary{Day: day}
			byDay[day] = s
			order = append(order, day)
		}
		return s
	}
	penCount := map[int]int{}
	for _, pe := range t.predictionErrors() {
		s := get(int(pe.Day))
		s.PredErrSamples++
		s.MeanAbsPredErr += pe.AbsError
		if pe.AbsError > s.MaxAbsPredErr {
			s.MaxAbsPredErr = pe.AbsError
		}
	}
	for i := range t.Decisions {
		d := &t.Decisions[i]
		s := get(int(d.Day))
		if d.Source == SourceGuard {
			s.GuardActions++
			continue
		}
		s.Decisions++
		mi := int(d.Mode)
		if mi < 0 {
			mi = 0
		}
		if mi >= len(s.ModeDecisions) {
			mi = len(s.ModeDecisions) - 1
		}
		s.ModeDecisions[mi]++
		if d.Hold {
			s.Holds++
			continue
		}
		if d.Winner >= 0 && d.Winner < d.NumCandidates {
			pen := d.Candidates[d.Winner].Penalty
			s.MeanWinnerPenalty += pen
			if penCount[int(d.Day)] == 0 || pen > s.MaxWinnerPenalty {
				s.MaxWinnerPenalty = pen
			}
			penCount[int(d.Day)]++
		}
	}
	out := make([]DaySummary, 0, len(order))
	sort.Ints(order)
	for _, day := range order {
		s := byDay[day]
		if n := penCount[day]; n > 0 {
			s.MeanWinnerPenalty /= float64(n)
		} else {
			s.MeanWinnerPenalty = 0
		}
		if s.PredErrSamples > 0 {
			s.MeanAbsPredErr /= float64(s.PredErrSamples)
		}
		out = append(out, *s)
	}
	return out
}

// PredError is one predicted-vs-realized comparison: the hottest inlet
// a decision's winner predicted for the end of its horizon, against
// what the next decision observed.
type PredError struct {
	// Time and Day are of the realizing (second) decision.
	Time float64
	Day  int32
	// Predicted and Actual hottest inlet (°C), and |Predicted−Actual|.
	Predicted, Actual float64
	AbsError          float64
}

// predictionErrors pairs consecutive controller decisions exactly like
// Ring's registry does: a pair counts only when the records are one
// period apart and the first has a usable winner.
func (t *Data) predictionErrors() []PredError {
	var out []PredError
	havePrev := false
	var prevPred, prevTime, prevPeriod float64
	for i := range t.Decisions {
		d := &t.Decisions[i]
		if d.Source != SourceController {
			havePrev = false
			continue
		}
		if havePrev {
			dt := d.Time - prevTime
			if dt > 0 && dt <= 1.5*prevPeriod {
				abs := d.ActualHottest - prevPred
				if abs < 0 {
					abs = -abs
				}
				out = append(out, PredError{
					Time: d.Time, Day: d.Day,
					Predicted: prevPred, Actual: d.ActualHottest, AbsError: abs,
				})
			}
		}
		if pred, ok := d.WinnerPredictedHottest(); ok {
			havePrev = true
			prevPred, prevTime, prevPeriod = pred, d.Time, d.PeriodSeconds
		} else {
			havePrev = false
		}
	}
	return out
}

// TopPredictionErrors returns the n largest |predicted − realized|
// hottest-inlet errors, worst first (fewer when the trace has fewer
// paired decisions).
func (t *Data) TopPredictionErrors(n int) []PredError {
	errs := t.predictionErrors()
	sort.Slice(errs, func(a, b int) bool {
		if errs[a].AbsError != errs[b].AbsError { //coolair:allow-floateq sort tie-break on exact equality
			return errs[a].AbsError > errs[b].AbsError
		}
		return errs[a].Time < errs[b].Time
	})
	if n > 0 && len(errs) > n {
		errs = errs[:n]
	}
	return errs
}
