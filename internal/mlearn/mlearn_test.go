package mlearn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth generates y = b0 + b·x + noise on random features.
func synth(n int, b0 float64, b []float64, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(b))
		yi := b0
		for j := range b {
			row[j] = rng.Float64()*20 - 10
			yi += b[j] * row[j]
		}
		X[i] = row
		y[i] = yi + rng.NormFloat64()*noise
	}
	return X, y
}

func TestFitOLSRecoversKnownModel(t *testing.T) {
	want := []float64{2.5, -1.25, 0.75}
	X, y := synth(400, 3.0, want, 0.01, 1)
	m, err := FitOLS(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3.0) > 0.02 {
		t.Errorf("intercept %v, want 3.0", m.Intercept)
	}
	for i, c := range m.Coef {
		if math.Abs(c-want[i]) > 0.02 {
			t.Errorf("coef[%d] = %v, want %v", i, c, want[i])
		}
	}
	if m.TrainRMSE > 0.05 {
		t.Errorf("train RMSE %v too high", m.TrainRMSE)
	}
}

func TestFitOLSNoiseTolerance(t *testing.T) {
	want := []float64{1.5, 2.0}
	X, y := synth(2000, -1.0, want, 1.0, 2)
	m, err := FitOLS(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Coef {
		if math.Abs(c-want[i]) > 0.1 {
			t.Errorf("coef[%d] = %v, want %v", i, c, want[i])
		}
	}
}

func TestFitOLSDegenerateInputs(t *testing.T) {
	if _, err := FitOLS(nil, nil, 0); err == nil {
		t.Error("nil input should error")
	}
	if _, err := FitOLS([][]float64{{1, 2}}, []float64{1}, 0); err == nil {
		t.Error("fewer rows than features should error")
	}
	if _, err := FitOLS([][]float64{{1}, {2, 3}, {4}}, []float64{1, 2, 3}, 0); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, err := FitOLS([][]float64{{1}, {2}}, []float64{1, 2, 3}, 0); err == nil {
		t.Error("mismatched y length should error")
	}
}

func TestFitOLSCollinearFeaturesRegularized(t *testing.T) {
	// x1 == x2 exactly: singular normal equations; ridge must rescue it.
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := rng.Float64() * 10
		X = append(X, []float64{v, v})
		y = append(y, 4*v+1)
	}
	m, err := FitOLS(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must still be right even if coefficients split the
	// weight between the twin features.
	for _, v := range []float64{0, 2.5, 7} {
		got := m.Predict([]float64{v, v})
		if math.Abs(got-(4*v+1)) > 0.2 {
			t.Errorf("collinear predict(%v) = %v, want %v", v, got, 4*v+1)
		}
	}
}

func TestPredictPanicsOnWrongDims(t *testing.T) {
	m := &Linear{Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	m.Predict([]float64{1})
}

func TestFitLMSIgnoresOutliers(t *testing.T) {
	want := []float64{2.0}
	X, y := synth(300, 1.0, want, 0.05, 4)
	// Corrupt 25% of rows severely.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 75; i++ {
		y[rng.Intn(len(y))] += 100 + rng.Float64()*200
	}
	lms, err := FitLMS(X, y, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lms.Coef[0]-2.0) > 0.1 || math.Abs(lms.Intercept-1.0) > 0.3 {
		t.Errorf("LMS fit %v + %v·x, want 1 + 2x", lms.Intercept, lms.Coef[0])
	}
	// Plain OLS is pulled off by the outliers; verify LMS beat it.
	ols, _ := FitOLS(X, y, 0)
	if math.Abs(ols.Intercept-1.0) < math.Abs(lms.Intercept-1.0) {
		t.Log("note: OLS happened to beat LMS on intercept; acceptable but unusual")
	}
}

func TestFitLMSDeterministic(t *testing.T) {
	X, y := synth(100, 0, []float64{1}, 0.5, 7)
	a, err := FitLMS(X, y, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FitLMS(X, y, 50, 42)
	if a.Intercept != b.Intercept || a.Coef[0] != b.Coef[0] {
		t.Error("LMS not deterministic for fixed seed")
	}
}

func TestModelTreeLearnsPiecewise(t *testing.T) {
	// y = x² is non-linear; a model tree should beat a single line.
	rng := rand.New(rand.NewSource(8))
	var X [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		v := rng.Float64()*2 - 1
		X = append(X, []float64{v})
		y = append(y, v*v)
	}
	tree, err := FitModelTree(X, y, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() < 2 {
		t.Fatalf("tree failed to split: %s", tree)
	}
	line, _ := FitOLS(X, y, 0)
	var treeSSE, lineSSE float64
	for i, row := range X {
		rt := tree.Predict(row) - y[i]
		rl := line.Predict(row) - y[i]
		treeSSE += rt * rt
		lineSSE += rl * rl
	}
	if treeSSE > lineSSE/3 {
		t.Errorf("tree SSE %v not much better than line SSE %v", treeSSE, lineSSE)
	}
}

func TestModelTreeCollapsesOnLinearData(t *testing.T) {
	X, y := synth(300, 1, []float64{3}, 0.01, 9)
	tree, err := FitModelTree(X, y, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// On perfectly linear data the 2%-improvement gate should keep the
	// tree at (or very near) a single leaf.
	if tree.Leaves() > 2 {
		t.Errorf("tree grew %d leaves on linear data", tree.Leaves())
	}
	if got := tree.Predict([]float64{2}); math.Abs(got-7) > 0.1 {
		t.Errorf("predict(2) = %v, want 7", got)
	}
}

func TestCrossValPrefersTrueModelClass(t *testing.T) {
	// Non-linear data: the tree should win model selection.
	rng := rand.New(rand.NewSource(10))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 10
		X = append(X, []float64{v})
		val := v
		if v > 5 {
			val = 10 + 4*v // kink at 5
		}
		y = append(y, val+rng.NormFloat64()*0.1)
	}
	_, idx, err := SelectBest([]Fitter{OLSFitter(0), TreeFitter(TreeOptions{MaxDepth: 3})}, X, y, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("model selection picked %d, want tree (1)", idx)
	}
	// Linear data: OLS should win (trees overfit).
	X2, y2 := synth(500, 2, []float64{1.5}, 0.5, 12)
	_, idx2, err := SelectBest([]Fitter{OLSFitter(0), TreeFitter(TreeOptions{MaxDepth: 3})}, X2, y2, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	if idx2 != 0 {
		t.Errorf("model selection picked %d on linear data, want OLS (0)", idx2)
	}
}

func TestErrorCDF(t *testing.T) {
	errs := []float64{0.1, 0.4, 0.9, 1.1, 2.0}
	cdf := ErrorCDF(errs, []float64{0.5, 1.0, 3.0})
	want := []float64{0.4, 0.6, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-9 {
			t.Errorf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestErrorCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		errs := make([]float64, len(raw))
		for i, v := range raw {
			errs[i] = math.Abs(math.Mod(v, 100))
		}
		cdf := ErrorCDF(errs, []float64{0.5, 1, 2, 5, 50, 101})
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return cdf[len(cdf)-1] == 1 // everything ≤ 101
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if q := Quantile(vals, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(vals, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(vals, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestResiduals(t *testing.T) {
	m := &Linear{Intercept: 1, Coef: []float64{2}}
	res := m.Residuals([][]float64{{1}, {2}}, []float64{3, 6})
	if res[0] != 0 || res[1] != 1 {
		t.Errorf("residuals = %v, want [0 1]", res)
	}
}

func TestPredictCheckedLinear(t *testing.T) {
	m := &Linear{Intercept: 1, Coef: []float64{2, 3}}
	got, err := m.PredictChecked([]float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Predict([]float64{10, 100}); got != want {
		t.Errorf("PredictChecked %v != Predict %v", got, want)
	}
	if _, err := m.PredictChecked([]float64{10}); err == nil {
		t.Error("dimension mismatch should error, not panic")
	}
}

func TestPredictCheckedModelTree(t *testing.T) {
	X, y := synth(200, 1.0, []float64{2}, 0.05, 11)
	tree, err := FitModelTree(X, y, TreeOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.PredictChecked([]float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.Predict([]float64{1.5}); got != want {
		t.Errorf("PredictChecked %v != Predict %v", got, want)
	}
	if _, err := tree.PredictChecked(nil); err == nil {
		t.Error("empty feature vector should error")
	}
}

func TestPredictCheckedHelperRecoversPanic(t *testing.T) {
	// The package helper must convert a plain Regressor's panic into an
	// error for callers that cannot know the concrete type.
	var r Regressor = &Linear{Coef: []float64{1, 2}}
	if _, err := PredictChecked(r, []float64{4, 5}); err != nil {
		t.Errorf("valid input errored: %v", err)
	}
	if _, err := PredictChecked(r, []float64{1, 2, 3}); err == nil {
		t.Error("mismatched input should return an error")
	}
	if _, err := PredictChecked(panicky{}, []float64{1}); err == nil {
		t.Error("panicking regressor should be recovered into an error")
	}
}

type panicky struct{}

func (panicky) Predict([]float64) float64 { panic("boom") }
