package mlearn

import (
	"math/rand"
	"sort"
)

// FitLMS fits a least-median-of-squares regression: among many candidate
// OLS fits on random subsamples, it keeps the one whose *median* squared
// residual over the full data is smallest. LMS tolerates up to ~50%
// outliers, which makes it robust to the sensor glitches and regime
// mislabeling that contaminate monitored datacenter data. The paper's
// Cooling Learner tries plain linear and least-median-square fits and
// keeps whichever validates better (§4.2).
//
// trials controls how many random subsamples are evaluated; 50–200 is
// typical. The result is deterministic for a given seed.
func FitLMS(X [][]float64, y []float64, trials int, seed int64) (*Linear, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrDegenerate
	}
	p := len(X[0])
	sub := 2*(p+1) + 2 // subsample size: comfortably above the minimum
	if sub > n {
		sub = n
	}
	if trials < 1 {
		trials = 50
	}
	rng := rand.New(rand.NewSource(seed))

	var best *Linear
	bestMed := 0.0
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sx := make([][]float64, sub)
	sy := make([]float64, sub)
	for t := 0; t < trials; t++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i := 0; i < sub; i++ {
			sx[i] = X[idx[i]]
			sy[i] = y[idx[i]]
		}
		m, err := FitOLS(sx, sy, 1e-8)
		if err != nil {
			continue
		}
		med := medianSquaredResidual(m, X, y)
		if best == nil || med < bestMed {
			best, bestMed = m, med
		}
	}
	if best == nil {
		return nil, ErrDegenerate
	}
	// Final polish: refit OLS on the inlier half selected by the best
	// candidate, the standard reweighting step after LMS.
	type rr struct {
		i  int
		r2 float64
	}
	rs := make([]rr, n)
	for i, row := range X {
		r := y[i] - best.Predict(row)
		rs[i] = rr{i, r * r}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].r2 < rs[b].r2 })
	keep := n/2 + p + 2
	if keep > n {
		keep = n
	}
	kx := make([][]float64, keep)
	ky := make([]float64, keep)
	for i := 0; i < keep; i++ {
		kx[i] = X[rs[i].i]
		ky[i] = y[rs[i].i]
	}
	if m, err := FitOLS(kx, ky, 1e-8); err == nil {
		return m, nil
	}
	return best, nil
}

func medianSquaredResidual(m *Linear, X [][]float64, y []float64) float64 {
	r2 := make([]float64, len(X))
	for i, row := range X {
		r := y[i] - m.Predict(row)
		r2[i] = r * r
	}
	sort.Float64s(r2)
	mid := len(r2) / 2
	if len(r2)%2 == 1 {
		return r2[mid]
	}
	return (r2[mid-1] + r2[mid]) / 2
}
