// Package mlearn is a small, stdlib-only statistical learning toolkit
// supplying the regression machinery CoolAir's Cooling Modeler needs
// (paper §4.2): ordinary least squares (with ridge regularization for
// ill-conditioned designs), least-median-of-squares robust regression,
// and M5P-style piecewise-linear model trees for the behaviours that are
// non-linear (e.g. fan power as a function of speed). The paper uses
// Weka for the same purposes; this package replaces it.
package mlearn

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegenerate is returned when a design matrix cannot support a fit
// (too few rows, or a singular system even after regularization).
var ErrDegenerate = errors.New("mlearn: degenerate regression problem")

// Linear is a fitted linear model y ≈ Intercept + Σ Coef[i]·x[i].
type Linear struct {
	Intercept float64
	Coef      []float64
	// TrainRMSE is the root-mean-squared residual on the training set.
	TrainRMSE float64
	// N is the number of training rows.
	N int
}

// Predict evaluates the model on one feature vector. It panics if the
// dimensionality differs from the fit, since that is always a
// programming error.
func (l *Linear) Predict(x []float64) float64 {
	if len(x) != len(l.Coef) {
		panic(fmt.Sprintf("mlearn: predict with %d features, model has %d", len(x), len(l.Coef)))
	}
	y := l.Intercept
	for i, c := range l.Coef {
		y += c * x[i]
	}
	return y
}

// PredictChecked evaluates the model on one feature vector, returning
// an error instead of panicking on a dimension mismatch — the form
// control loops use, where a malformed feature vector must degrade the
// decision rather than crash it.
func (l *Linear) PredictChecked(x []float64) (float64, error) {
	if len(x) != len(l.Coef) {
		return 0, fmt.Errorf("mlearn: predict with %d features, model has %d", len(x), len(l.Coef))
	}
	return l.Predict(x), nil
}

// FitOLS fits ordinary least squares with a small ridge penalty for
// numerical stability. X is row-major (one row per observation). The
// ridge term lambda may be zero; if the normal equations remain singular
// the fit retries with escalating regularization before giving up.
func FitOLS(X [][]float64, y []float64, lambda float64) (*Linear, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, ErrDegenerate
	}
	p := len(X[0])
	if n < p+1 {
		return nil, fmt.Errorf("%w: %d rows for %d features", ErrDegenerate, n, p)
	}
	for _, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("%w: ragged design matrix", ErrDegenerate)
		}
	}

	// Build augmented design [1 | X] and the normal equations AᵀA w = Aᵀy.
	d := p + 1
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	aty := make([]float64, d)
	for r := 0; r < n; r++ {
		row := X[r]
		// feature 0 is the implicit intercept column of ones.
		ata[0][0]++
		aty[0] += y[r]
		for i := 0; i < p; i++ {
			ata[0][i+1] += row[i]
			ata[i+1][0] += row[i]
			aty[i+1] += row[i] * y[r]
			for j := 0; j < p; j++ {
				ata[i+1][j+1] += row[i] * row[j]
			}
		}
	}

	for _, lam := range []float64{lambda, math.Max(lambda, 1e-8), 1e-4, 1e-2} {
		sys := make([][]float64, d)
		rhs := make([]float64, d)
		for i := range sys {
			sys[i] = make([]float64, d)
			copy(sys[i], ata[i])
			rhs[i] = aty[i]
			if i > 0 { // do not penalize the intercept
				sys[i][i] += lam * float64(n)
			}
		}
		w, err := solveGauss(sys, rhs)
		if err != nil {
			continue
		}
		m := &Linear{Intercept: w[0], Coef: w[1:], N: n}
		m.TrainRMSE = rmse(m, X, y)
		if !math.IsNaN(m.TrainRMSE) && !math.IsInf(m.TrainRMSE, 0) {
			return m, nil
		}
	}
	return nil, ErrDegenerate
}

// solveGauss solves a dense linear system with partial pivoting.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, ErrDegenerate
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

func rmse(m *Linear, X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	sum := 0.0
	for i, row := range X {
		r := m.Predict(row) - y[i]
		sum += r * r
	}
	return math.Sqrt(sum / float64(len(X)))
}

// Residuals returns the per-row prediction errors of the model.
func (l *Linear) Residuals(X [][]float64, y []float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = y[i] - l.Predict(row)
	}
	return out
}
