package mlearn

import (
	"fmt"
	"sort"
)

// ModelTree is an M5P-style piecewise-linear model tree: internal nodes
// split on one feature's threshold, leaves hold linear models. The paper
// uses Weka's M5P for non-linear behaviours such as cooling power as a
// function of fan speed; this is a compact reimplementation of the same
// idea (split where it most reduces squared error, fit linear models in
// the leaves, stop at a minimum leaf size or depth).
type ModelTree struct {
	// Leaf model; non-nil exactly when the node is a leaf.
	Model *Linear
	// Split definition for internal nodes.
	Feature   int
	Threshold float64
	Left      *ModelTree // rows with x[Feature] <= Threshold
	Right     *ModelTree
}

// TreeOptions tunes model-tree induction.
type TreeOptions struct {
	MaxDepth    int // default 3
	MinLeafRows int // default 4·(features+1)
	Lambda      float64
}

func (o TreeOptions) withDefaults(p int) TreeOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.MinLeafRows <= 0 {
		o.MinLeafRows = 4 * (p + 1)
	}
	return o
}

// FitModelTree induces a piecewise-linear model tree on the data.
func FitModelTree(X [][]float64, y []float64, opts TreeOptions) (*ModelTree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrDegenerate
	}
	opts = opts.withDefaults(len(X[0]))
	return growTree(X, y, opts, 0)
}

func growTree(X [][]float64, y []float64, opts TreeOptions, depth int) (*ModelTree, error) {
	leaf, leafErr := FitOLS(X, y, opts.Lambda)
	if depth >= opts.MaxDepth || len(X) < 2*opts.MinLeafRows {
		if leafErr != nil {
			return nil, leafErr
		}
		return &ModelTree{Model: leaf}, nil
	}

	bestFeat, bestThr, bestSSE := -1, 0.0, 0.0
	if leaf != nil {
		bestSSE = sse(leaf, X, y) * 0.98 // a split must improve by ≥2%
	}
	p := len(X[0])
	for f := 0; f < p; f++ {
		thrs := candidateThresholds(X, f)
		for _, thr := range thrs {
			lX, lY, rX, rY := partition(X, y, f, thr)
			if len(lX) < opts.MinLeafRows || len(rX) < opts.MinLeafRows {
				continue
			}
			lm, lerr := FitOLS(lX, lY, opts.Lambda)
			rm, rerr := FitOLS(rX, rY, opts.Lambda)
			if lerr != nil || rerr != nil {
				continue
			}
			total := sse(lm, lX, lY) + sse(rm, rX, rY)
			if bestFeat == -1 && leaf == nil || total < bestSSE {
				bestFeat, bestThr, bestSSE = f, thr, total
			}
		}
	}
	if bestFeat == -1 {
		if leafErr != nil {
			return nil, leafErr
		}
		return &ModelTree{Model: leaf}, nil
	}
	lX, lY, rX, rY := partition(X, y, bestFeat, bestThr)
	left, err := growTree(lX, lY, opts, depth+1)
	if err != nil {
		return &ModelTree{Model: leaf}, nil
	}
	right, err := growTree(rX, rY, opts, depth+1)
	if err != nil {
		return &ModelTree{Model: leaf}, nil
	}
	return &ModelTree{Feature: bestFeat, Threshold: bestThr, Left: left, Right: right}, nil
}

// candidateThresholds returns up to 8 quantile cut points of feature f.
func candidateThresholds(X [][]float64, f int) []float64 {
	vals := make([]float64, len(X))
	for i, row := range X {
		vals[i] = row[f]
	}
	sort.Float64s(vals)
	// After sorting, identical endpoints mean the whole column is one
	// value — exact equality is the degenerate-feature test.
	if vals[0] == vals[len(vals)-1] { //coolair:allow-floateq degenerate constant feature

		return nil
	}
	var out []float64
	for q := 1; q <= 8; q++ {
		v := vals[len(vals)*q/9]
		if len(out) == 0 || v != out[len(out)-1] { //coolair:allow-floateq dedup of exact sample values

			out = append(out, v)
		}
	}
	return out
}

func partition(X [][]float64, y []float64, f int, thr float64) (lX [][]float64, lY []float64, rX [][]float64, rY []float64) {
	for i, row := range X {
		if row[f] <= thr {
			lX = append(lX, row)
			lY = append(lY, y[i])
		} else {
			rX = append(rX, row)
			rY = append(rY, y[i])
		}
	}
	return
}

func sse(m *Linear, X [][]float64, y []float64) float64 {
	sum := 0.0
	for i, row := range X {
		r := m.Predict(row) - y[i]
		sum += r * r
	}
	return sum
}

// Predict evaluates the tree on one feature vector.
func (t *ModelTree) Predict(x []float64) float64 {
	for t.Model == nil {
		if x[t.Feature] <= t.Threshold {
			t = t.Left
		} else {
			t = t.Right
		}
	}
	return t.Model.Predict(x)
}

// PredictChecked evaluates the tree on one feature vector, returning an
// error instead of panicking when the vector is too short for a split
// feature or for the leaf model.
func (t *ModelTree) PredictChecked(x []float64) (float64, error) {
	for t.Model == nil {
		if t.Feature >= len(x) {
			return 0, fmt.Errorf("mlearn: predict with %d features, tree splits on feature %d", len(x), t.Feature)
		}
		if x[t.Feature] <= t.Threshold {
			t = t.Left
		} else {
			t = t.Right
		}
	}
	return t.Model.PredictChecked(x)
}

// Leaves returns the number of leaf models in the tree.
func (t *ModelTree) Leaves() int {
	if t.Model != nil {
		return 1
	}
	return t.Left.Leaves() + t.Right.Leaves()
}

// String renders the tree structure for debugging.
func (t *ModelTree) String() string {
	if t.Model != nil {
		return fmt.Sprintf("leaf(n=%d, rmse=%.3g)", t.Model.N, t.Model.TrainRMSE)
	}
	return fmt.Sprintf("(x%d<=%.3g ? %s : %s)", t.Feature, t.Threshold, t.Left, t.Right)
}
