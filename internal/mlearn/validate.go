package mlearn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Regressor is anything that maps a feature vector to a prediction; both
// Linear and ModelTree satisfy it.
type Regressor interface {
	Predict(x []float64) float64
}

// CheckedRegressor is a Regressor that can also report a malformed
// feature vector as an error instead of panicking; both Linear and
// ModelTree satisfy it.
type CheckedRegressor interface {
	Regressor
	PredictChecked(x []float64) (float64, error)
}

// PredictChecked evaluates any regressor non-panicking: regressors that
// implement CheckedRegressor validate the vector themselves; for others
// the panic of a bare Predict is converted to an error.
func PredictChecked(r Regressor, x []float64) (y float64, err error) {
	if cr, ok := r.(CheckedRegressor); ok {
		return cr.PredictChecked(x)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("mlearn: predict failed: %v", p)
		}
	}()
	return r.Predict(x), nil
}

// Fitter builds a Regressor from training data. It lets model selection
// (below) treat OLS, LMS, and model trees uniformly, mirroring the
// paper's "try linear and least median square approaches and pick the
// one with the lowest error".
type Fitter func(X [][]float64, y []float64) (Regressor, error)

// OLSFitter adapts FitOLS to the Fitter signature.
func OLSFitter(lambda float64) Fitter {
	return func(X [][]float64, y []float64) (Regressor, error) { return FitOLS(X, y, lambda) }
}

// LMSFitter adapts FitLMS to the Fitter signature.
func LMSFitter(trials int, seed int64) Fitter {
	return func(X [][]float64, y []float64) (Regressor, error) { return FitLMS(X, y, trials, seed) }
}

// TreeFitter adapts FitModelTree to the Fitter signature.
func TreeFitter(opts TreeOptions) Fitter {
	return func(X [][]float64, y []float64) (Regressor, error) { return FitModelTree(X, y, opts) }
}

// CrossValRMSE estimates a fitter's generalization error with k-fold
// cross validation (deterministic shuffling by seed). It returns the
// RMSE pooled over held-out folds.
func CrossValRMSE(f Fitter, X [][]float64, y []float64, k int, seed int64) float64 {
	n := len(X)
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	var sum float64
	var count int
	for fold := 0; fold < k; fold++ {
		var trX, teX [][]float64
		var trY, teY []float64
		for pos, i := range idx {
			if pos%k == fold {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		m, err := f(trX, trY)
		if err != nil {
			return math.Inf(1)
		}
		for i, row := range teX {
			r := m.Predict(row) - teY[i]
			sum += r * r
			count++
		}
	}
	if count == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sum / float64(count))
}

// SelectBest cross-validates each candidate fitter and returns the model
// trained on the full data by the fitter with the lowest CV error.
func SelectBest(cands []Fitter, X [][]float64, y []float64, k int, seed int64) (Regressor, int, error) {
	bestIdx, bestErr := -1, math.Inf(1)
	for i, f := range cands {
		if e := CrossValRMSE(f, X, y, k, seed); e < bestErr {
			bestIdx, bestErr = i, e
		}
	}
	if bestIdx < 0 {
		return nil, -1, ErrDegenerate
	}
	m, err := cands[bestIdx](X, y)
	return m, bestIdx, err
}

// ErrorCDF computes the empirical CDF of absolute prediction errors,
// evaluated at the given thresholds. It returns, for each threshold, the
// fraction of |prediction − truth| values at or below it — the exact
// quantity plotted in the paper's Figure 5 model validation.
func ErrorCDF(errsAbs []float64, thresholds []float64) []float64 {
	sorted := make([]float64, len(errsAbs))
	copy(sorted, errsAbs)
	sort.Float64s(sorted)
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		// count entries <= t
		lo := sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))
		out[i] = float64(lo) / float64(len(sorted))
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the values.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
