package metrics

import (
	"math"
	"testing"

	"coolair/internal/units"
)

func TestViolationAveraging(t *testing.T) {
	c := NewCollector(2, 30, 80)
	// Four readings: 29, 31, 30, 32 → violations 0,1,0,2 → avg 0.75.
	c.Observe(0, []units.Celsius{29, 31}, 50, 20, 0, 100, 30)
	c.Observe(0, []units.Celsius{30, 32}, 50, 20, 0, 100, 30)
	s := c.Summarize()
	if math.Abs(s.AvgViolation-0.75) > 1e-9 {
		t.Errorf("avg violation %v, want 0.75", s.AvgViolation)
	}
}

func TestWorstDailyRange(t *testing.T) {
	c := NewCollector(2, 30, 80)
	// Day 0: pod0 spans 18–26 (8), pod1 spans 20–24 (4) → worst 8.
	c.Observe(0, []units.Celsius{18, 22}, 50, 10, 0, 100, 30)
	c.Observe(0, []units.Celsius{26, 24}, 50, 14, 0, 100, 30)
	c.Observe(0, []units.Celsius{20, 20}, 50, 12, 0, 100, 30)
	// Day 1: pod0 spans 2, pod1 spans 12 → worst 12.
	c.Observe(1, []units.Celsius{20, 16}, 50, 10, 0, 100, 30)
	c.Observe(1, []units.Celsius{22, 28}, 50, 20, 0, 100, 30)
	s := c.Summarize()
	if s.Days != 2 {
		t.Fatalf("days = %d, want 2", s.Days)
	}
	if math.Abs(s.AvgWorstDailyRange-10) > 1e-9 {
		t.Errorf("avg worst range %v, want 10", s.AvgWorstDailyRange)
	}
	if s.MinWorstDailyRange != 8 || s.MaxWorstDailyRange != 12 {
		t.Errorf("min/max worst range %v/%v, want 8/12", s.MinWorstDailyRange, s.MaxWorstDailyRange)
	}
	// Outside ranges: day0 10–14 (4), day1 10–20 (10).
	if s.MinOutsideDailyRange != 4 || s.MaxOutsideDailyRange != 10 {
		t.Errorf("outside ranges %v/%v, want 4/10", s.MinOutsideDailyRange, s.MaxOutsideDailyRange)
	}
	ranges := c.WorstDailyRanges()
	if len(ranges) != 2 || ranges[0] != 8 || ranges[1] != 12 {
		t.Errorf("WorstDailyRanges = %v", ranges)
	}
}

func TestPUEAndEnergy(t *testing.T) {
	c := NewCollector(1, 30, 80)
	// 1 hour: IT 1 kW, cooling 200 W → PUE 1 + 0.08 + 0.2 = 1.28.
	for i := 0; i < 120; i++ {
		c.Observe(0, []units.Celsius{25}, 50, 20, 200, 1000, 30)
	}
	s := c.Summarize()
	if math.Abs(s.PUE-1.28) > 1e-9 {
		t.Errorf("PUE %v, want 1.28", s.PUE)
	}
	if math.Abs(s.ITKWh-1.0) > 1e-9 || math.Abs(s.CoolingKWh-0.2) > 1e-9 {
		t.Errorf("energy %v/%v kWh", s.ITKWh, s.CoolingKWh)
	}
}

func TestRHViolations(t *testing.T) {
	c := NewCollector(1, 30, 80)
	c.Observe(0, []units.Celsius{25}, 85, 20, 0, 100, 30)
	c.Observe(0, []units.Celsius{25}, 70, 20, 0, 100, 30)
	c.Observe(0, []units.Celsius{25}, 90, 20, 0, 100, 30)
	c.Observe(0, []units.Celsius{25}, 75, 20, 0, 100, 30)
	s := c.Summarize()
	if math.Abs(s.RHViolationFraction-0.5) > 1e-9 {
		t.Errorf("RH violation fraction %v, want 0.5", s.RHViolationFraction)
	}
}

func TestMaxRatePerHour(t *testing.T) {
	c := NewCollector(1, 30, 80)
	c.Observe(0, []units.Celsius{20}, 50, 20, 0, 100, 600)
	c.Observe(0, []units.Celsius{22}, 50, 20, 0, 100, 600) // +2°C over 10 min = 12°C/h
	c.Observe(0, []units.Celsius{21}, 50, 20, 0, 100, 600) // −1°C over 10 min = 6°C/h
	s := c.Summarize()
	if math.Abs(s.MaxRatePerHour-12) > 1e-6 {
		t.Errorf("max rate %v °C/h, want 12", s.MaxRatePerHour)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(2, 30, 80)
	s := c.Summarize()
	if s.Days != 0 || s.AvgViolation != 0 || s.PUE != 1+DeliveryOverhead {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSingleSampleDay(t *testing.T) {
	// One reading per day: the daily min and max coincide, so each day's
	// worst range must be exactly zero, not Inf or NaN.
	c := NewCollector(2, 30, 80)
	c.Observe(0, []units.Celsius{21, 23}, 50, 15, 0, 100, 30)
	c.Observe(1, []units.Celsius{24, 19}, 50, 18, 0, 100, 30)
	s := c.Summarize()
	if s.Days != 2 {
		t.Fatalf("days = %d, want 2", s.Days)
	}
	if s.MinWorstDailyRange != 0 || s.MaxWorstDailyRange != 0 || s.AvgWorstDailyRange != 0 {
		t.Errorf("single-sample ranges %v/%v/%v, want all 0",
			s.MinWorstDailyRange, s.AvgWorstDailyRange, s.MaxWorstDailyRange)
	}
	if s.MaxOutsideDailyRange != 0 {
		t.Errorf("single-sample outside range %v, want 0", s.MaxOutsideDailyRange)
	}
	// A single sample per day gives no same-day pair to difference, and the
	// day boundary resets the pairing, so no rate may be recorded.
	if s.MaxRatePerHour != 0 {
		t.Errorf("rate %v °C/h across a day gap, want 0", s.MaxRatePerHour)
	}
}

func TestPartialFinalDay(t *testing.T) {
	// The final day is cut short (2 samples vs day 0's full 4): Summarize
	// must still close it and fold its extremes into the daily stats.
	c := NewCollector(1, 30, 80)
	for _, temp := range []units.Celsius{18, 26, 22, 20} {
		c.Observe(0, []units.Celsius{temp}, 50, 10, 0, 100, 30)
	}
	c.Observe(1, []units.Celsius{21}, 50, 12, 0, 100, 30)
	c.Observe(1, []units.Celsius{24}, 50, 13, 0, 100, 30)
	s := c.Summarize()
	if s.Days != 2 {
		t.Fatalf("days = %d, want 2 (partial final day dropped?)", s.Days)
	}
	// Day 0 spans 18–26 (8), the partial day 1 spans 21–24 (3).
	if s.MinWorstDailyRange != 3 || s.MaxWorstDailyRange != 8 {
		t.Errorf("min/max worst range %v/%v, want 3/8", s.MinWorstDailyRange, s.MaxWorstDailyRange)
	}
	ranges := c.WorstDailyRanges()
	if len(ranges) != 2 || ranges[1] != 3 {
		t.Errorf("WorstDailyRanges = %v, want [8 3]", ranges)
	}
	// Summarize closed the partial day; a second Summarize must not count
	// it (or anything else) twice.
	if again := c.Summarize(); again.Days != 2 {
		t.Errorf("second Summarize days = %d, want 2", again.Days)
	}
}

func TestSingleDayBoundary(t *testing.T) {
	c := NewCollector(1, 30, 80)
	c.Observe(5, []units.Celsius{20}, 50, 20, 0, 100, 30)
	c.Observe(5, []units.Celsius{25}, 50, 20, 0, 100, 30)
	s := c.Summarize()
	if s.Days != 1 {
		t.Errorf("days = %d, want 1", s.Days)
	}
	if s.MaxWorstDailyRange != 5 {
		t.Errorf("range %v, want 5", s.MaxWorstDailyRange)
	}
}
