// Package metrics computes the evaluation measures of the paper:
// average temperature violations above a desired maximum (Figure 8),
// daily per-sensor temperature ranges — average, minimum, and maximum of
// the worst sensor's daily range (Figure 9), yearly PUE with power
// delivery overhead (Figure 10), humidity-limit violations, temperature
// rate-of-change, and cooling-energy accounting.
package metrics

import (
	"math"

	"coolair/internal/units"
)

// DeliveryOverhead is Parasol's power-delivery loss expressed in PUE
// terms (the paper adds 0.08 to all PUEs).
const DeliveryOverhead = 0.08

// Collector accumulates observations over a (possibly multi-day) run.
// Observe must be called at every simulation step.
type Collector struct {
	pods    int
	maxTemp units.Celsius
	rhLimit units.RelHumidity

	// violation accounting (per sensor reading)
	violationSum float64
	readingCount int
	rhViolations int
	rhReadings   int

	// per-day, per-sensor extremes
	curDay     int
	dayMin     []float64
	dayMax     []float64
	worstDaily []float64 // worst sensor range, per completed day

	// outside extremes per day
	outMin, outMax float64
	outsideDaily   []float64

	// rate of change: previous sample per sensor
	prevTemp  []float64
	prevTime  float64
	havePrev  bool
	maxRateHr float64

	// energy
	coolingE units.Joules
	itE      units.Joules

	timeSeconds float64
}

// NewCollector creates a collector enforcing the given desired maximum
// temperature and relative-humidity limit (paper defaults: 30°C, 80%).
func NewCollector(pods int, maxTemp units.Celsius, rhLimit units.RelHumidity) *Collector {
	return &Collector{
		pods:    pods,
		maxTemp: maxTemp,
		rhLimit: rhLimit,
		curDay:  -1,
	}
}

// Observe records one simulation step: per-pod inlet temperatures,
// inside RH, outside temperature, instantaneous cooling and IT power,
// and the step length.
func (c *Collector) Observe(day int, podTemp []units.Celsius, rh units.RelHumidity,
	outside units.Celsius, coolingPower, itPower units.Watts, dtSeconds float64) {

	if day != c.curDay {
		c.closeDay()
		c.curDay = day
		// Rate-of-change must not be measured across the gap between
		// non-consecutive simulated days.
		c.havePrev = false
		c.dayMin = make([]float64, c.pods)
		c.dayMax = make([]float64, c.pods)
		for i := range c.dayMin {
			c.dayMin[i] = math.Inf(1)
			c.dayMax[i] = math.Inf(-1)
		}
		c.outMin, c.outMax = math.Inf(1), math.Inf(-1)
	}

	now := c.timeSeconds
	for i, v := range podTemp {
		f := float64(v)
		if f > float64(c.maxTemp) {
			c.violationSum += f - float64(c.maxTemp)
		}
		c.readingCount++
		if i < c.pods {
			c.dayMin[i] = math.Min(c.dayMin[i], f)
			c.dayMax[i] = math.Max(c.dayMax[i], f)
		}
		if c.havePrev && now > c.prevTime {
			rate := math.Abs(f-c.prevTemp[i]) / (now - c.prevTime) * 3600
			if rate > c.maxRateHr {
				c.maxRateHr = rate
			}
		}
	}
	if c.prevTemp == nil {
		c.prevTemp = make([]float64, len(podTemp))
	}
	for i, v := range podTemp {
		c.prevTemp[i] = float64(v)
	}
	c.prevTime = now
	c.havePrev = true

	c.rhReadings++
	if rh > c.rhLimit {
		c.rhViolations++
	}

	c.outMin = math.Min(c.outMin, float64(outside))
	c.outMax = math.Max(c.outMax, float64(outside))

	c.coolingE.Add(coolingPower, dtSeconds)
	c.itE.Add(itPower, dtSeconds)
	c.timeSeconds += dtSeconds
}

// closeDay folds the current day's extremes into the daily-range lists.
func (c *Collector) closeDay() {
	if c.curDay < 0 || c.dayMin == nil {
		return
	}
	worst := 0.0
	for i := range c.dayMin {
		if math.IsInf(c.dayMin[i], 1) {
			continue
		}
		r := c.dayMax[i] - c.dayMin[i]
		if r > worst {
			worst = r
		}
	}
	c.worstDaily = append(c.worstDaily, worst)
	if !math.IsInf(c.outMin, 1) {
		c.outsideDaily = append(c.outsideDaily, c.outMax-c.outMin)
	}
}

// Summary is the digest of one run.
type Summary struct {
	// AvgViolation is the mean, over all sensor readings, of degrees
	// above the desired maximum (readings at or below count as zero) —
	// Figure 8's metric.
	AvgViolation float64
	// AvgWorstDailyRange / MinWorstDailyRange / MaxWorstDailyRange
	// summarize the per-day worst-sensor ranges — Figure 9's bars and
	// whiskers.
	AvgWorstDailyRange float64
	MinWorstDailyRange float64
	MaxWorstDailyRange float64
	// Outside equivalents, for Figure 9's "Outside" group.
	AvgOutsideDailyRange float64
	MinOutsideDailyRange float64
	MaxOutsideDailyRange float64
	// PUE includes the 0.08 delivery overhead (Figure 10).
	PUE float64
	// CoolingKWh and ITKWh are the period's energies.
	CoolingKWh, ITKWh float64
	// RHViolationFraction is the fraction of samples above the RH limit.
	RHViolationFraction float64
	// MaxRatePerHour is the steepest observed |dT/dt| in °C/hour
	// (ASHRAE recommends ≤ 20).
	MaxRatePerHour float64
	// Days is the number of completed days.
	Days int
}

// Summarize closes the current day and produces the run digest.
func (c *Collector) Summarize() Summary {
	c.closeDay()
	c.curDay = -1
	c.dayMin, c.dayMax = nil, nil

	s := Summary{Days: len(c.worstDaily)}
	if c.readingCount > 0 {
		s.AvgViolation = c.violationSum / float64(c.readingCount)
	}
	s.AvgWorstDailyRange, s.MinWorstDailyRange, s.MaxWorstDailyRange = stats(c.worstDaily)
	s.AvgOutsideDailyRange, s.MinOutsideDailyRange, s.MaxOutsideDailyRange = stats(c.outsideDaily)
	s.CoolingKWh = c.coolingE.KWh()
	s.ITKWh = c.itE.KWh()
	s.PUE = units.PUE(c.itE, c.coolingE, DeliveryOverhead)
	if c.rhReadings > 0 {
		s.RHViolationFraction = float64(c.rhViolations) / float64(c.rhReadings)
	}
	s.MaxRatePerHour = c.maxRateHr
	return s
}

func stats(v []float64) (avg, min, max float64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	min, max = v[0], v[0]
	sum := 0.0
	for _, x := range v {
		sum += x
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	return sum / float64(len(v)), min, max
}

// WorstDailyRanges exposes the per-day worst-sensor ranges (for
// distribution plots and tests).
func (c *Collector) WorstDailyRanges() []float64 {
	return append([]float64(nil), c.worstDaily...)
}
