// Package workload models the MapReduce workloads of the evaluation: a
// statistical generator that reproduces the published characteristics of
// the paper's day-long "Facebook" trace (a SWIM-scaled sample of a 600-
// machine Facebook trace: ~5500 jobs, ~68000 tasks, 2–1190 maps and
// 1–63 reduces per job, 27% average datacenter utilization) and the
// "Nutch" CloudSuite indexing trace (2000 jobs/day, 42 maps + 1 reduce,
// Poisson arrivals with 40 s mean inter-arrival, 32% utilization).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Job is one MapReduce job: a map phase of Maps tasks followed by a
// reduce phase of Reduces tasks. Durations are per task, in seconds.
type Job struct {
	ID      int
	Arrival float64 // seconds from the start of the day
	Maps    int
	MapDur  float64
	Reduces int
	RedDur  float64
	// Deadline is the latest allowed *start* time (seconds from the
	// start of the day). Non-deferrable jobs have Deadline == Arrival:
	// they must start as soon as resources permit. The paper's
	// deferrable variants use Arrival + 6 hours.
	Deadline float64
	// InputMB is the input size, for reporting only.
	InputMB float64
}

// SlotSeconds returns the total slot-time the job consumes.
func (j Job) SlotSeconds() float64 {
	return float64(j.Maps)*j.MapDur + float64(j.Reduces)*j.RedDur
}

// Deferrable reports whether the job tolerates delayed start.
func (j Job) Deferrable() bool { return j.Deadline > j.Arrival }

// Trace is a day-long sequence of jobs ordered by arrival time.
type Trace struct {
	Name string
	Jobs []Job
}

// Validate checks ordering and field sanity.
func (t *Trace) Validate() error {
	for i, j := range t.Jobs {
		if j.Maps < 1 || j.MapDur <= 0 || j.Reduces < 0 {
			return fmt.Errorf("workload: job %d malformed: %+v", i, j)
		}
		if j.Reduces > 0 && j.RedDur <= 0 {
			return fmt.Errorf("workload: job %d has reduces but no duration", i)
		}
		if j.Deadline < j.Arrival {
			return fmt.Errorf("workload: job %d deadline before arrival", i)
		}
		if i > 0 && j.Arrival < t.Jobs[i-1].Arrival {
			return fmt.Errorf("workload: jobs out of arrival order at %d", i)
		}
	}
	return nil
}

// Stats summarizes a trace.
type Stats struct {
	Jobs, Tasks      int
	SlotSeconds      float64
	MeanInterArrival float64
	// AvgUtilization is the day-average fraction of the given slot
	// capacity the trace demands.
	AvgUtilization float64
}

// Stats computes summary statistics against a slot capacity (servers ×
// slots per server).
func (t *Trace) Stats(slotCapacity int) Stats {
	s := Stats{Jobs: len(t.Jobs)}
	for _, j := range t.Jobs {
		s.Tasks += j.Maps + j.Reduces
		s.SlotSeconds += j.SlotSeconds()
	}
	if len(t.Jobs) > 1 {
		span := t.Jobs[len(t.Jobs)-1].Arrival - t.Jobs[0].Arrival
		s.MeanInterArrival = span / float64(len(t.Jobs)-1)
	}
	s.AvgUtilization = s.SlotSeconds / (float64(slotCapacity) * 86400)
	return s
}

// WithDeadlines returns a copy of the trace whose jobs may be deferred
// by up to slack seconds past their arrival (the paper uses 6-hour start
// deadlines for the deferrable variants).
func (t *Trace) WithDeadlines(slack float64) *Trace {
	out := &Trace{Name: t.Name + "-deferrable", Jobs: make([]Job, len(t.Jobs))}
	copy(out.Jobs, t.Jobs)
	for i := range out.Jobs {
		out.Jobs[i].Deadline = out.Jobs[i].Arrival + slack
	}
	return out
}

// lognorm draws a log-normal sample with the given median and sigma (of
// the underlying normal), clipped to [lo, hi].
func lognorm(rng *rand.Rand, median, sigma, lo, hi float64) float64 {
	v := median * math.Exp(rng.NormFloat64()*sigma)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// diurnalRate returns a relative arrival intensity with the
// business-hours hump typical of the Facebook trace.
func diurnalRate(hour float64) float64 {
	return 1 + 0.6*math.Sin(2*math.Pi*(hour-9)/24)
}

// Facebook generates the day-long SWIM-like Facebook trace for the given
// number of servers (the paper scales to 64 machines). The generator is
// deterministic per seed; durations are calibrated so the trace demands
// targetUtil of the cluster's slot capacity (2 slots per server).
func Facebook(servers int, seed int64) *Trace {
	// targetUtil is the slot-demand fraction calibrated so that the
	// *datacenter* utilization (fraction of active servers under
	// CoolAir's management, the paper's definition) averages ~27%.
	const (
		jobs       = 5500
		targetUtil = 0.12
	)
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: "facebook"}

	// Arrival times: thinned non-homogeneous Poisson over the day.
	arrivals := make([]float64, 0, jobs)
	for len(arrivals) < jobs {
		at := rng.Float64() * 86400
		if rng.Float64()*1.6 < diurnalRate(at/3600) {
			arrivals = append(arrivals, at)
		}
	}
	sort.Float64s(arrivals)

	for i, at := range arrivals {
		// Heavy-tailed job sizes: most jobs are tiny, a few are huge.
		maps := int(lognorm(rng, 6, 1.6, 2, 1190))
		reduces := 0
		if rng.Float64() < 0.7 {
			reduces = int(lognorm(rng, 2, 1.3, 1, 63))
		}
		mapPhase := lognorm(rng, 90, 1.5, 25, 13000) // whole-phase seconds
		redPhase := 0.0
		if reduces > 0 {
			redPhase = lognorm(rng, 60, 1.2, 15, 2600)
		}
		// Convert phase durations to per-task durations assuming the
		// job's tasks run in a handful of waves.
		waves := 1 + maps/64
		mapDur := mapPhase / float64(waves)
		redDur := 0.0
		if reduces > 0 {
			redDur = redPhase / float64(1+reduces/64)
		}
		j := Job{
			ID: i, Arrival: at,
			Maps: maps, MapDur: mapDur,
			Reduces: reduces, RedDur: redDur,
			Deadline: at,
			InputMB:  64 * float64(maps) * (0.5 + rng.Float64()),
		}
		t.Jobs = append(t.Jobs, j)
	}
	calibrate(t, servers*2, targetUtil)
	return t
}

// Nutch generates the CloudSuite Web-indexing trace: fixed-shape jobs
// with Poisson arrivals.
func Nutch(servers int, seed int64) *Trace {
	// targetUtil calibrated as in Facebook, for ~32% datacenter
	// utilization.
	const (
		jobs       = 2000
		meanGap    = 40.0
		targetUtil = 0.14
	)
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: "nutch"}
	at := 0.0
	for i := 0; i < jobs; i++ {
		at += rng.ExpFloat64() * meanGap
		if at > 86400 {
			at = math.Mod(at, 86400) // wrap stragglers into the day
		}
		j := Job{
			ID: i, Arrival: at,
			Maps: 42, MapDur: 15 + rng.Float64()*25, // 15–40 s
			Reduces: 1, RedDur: 150,
			Deadline: at,
			InputMB:  85,
		}
		t.Jobs = append(t.Jobs, j)
	}
	sort.Slice(t.Jobs, func(a, b int) bool { return t.Jobs[a].Arrival < t.Jobs[b].Arrival })
	for i := range t.Jobs {
		t.Jobs[i].ID = i
	}
	calibrate(t, servers*2, targetUtil)
	return t
}

// calibrate rescales task durations so the trace's slot demand matches
// the target day-average utilization of the slot capacity.
func calibrate(t *Trace, slotCapacity int, targetUtil float64) {
	var total float64
	for _, j := range t.Jobs {
		total += j.SlotSeconds()
	}
	want := targetUtil * float64(slotCapacity) * 86400
	if total <= 0 {
		return
	}
	f := want / total
	for i := range t.Jobs {
		t.Jobs[i].MapDur *= f
		t.Jobs[i].RedDur *= f
		// Keep durations physical after scaling.
		if t.Jobs[i].MapDur < 5 {
			t.Jobs[i].MapDur = 5
		}
		if t.Jobs[i].Reduces > 0 && t.Jobs[i].RedDur < 5 {
			t.Jobs[i].RedDur = 5
		}
	}
}

// HourlyDemand returns, for each hour of the day, the offered slot
// demand (slot-seconds arriving that hour divided by 3600) — the shape
// CoolAir's temporal scheduler reasons about.
func (t *Trace) HourlyDemand() [24]float64 {
	var out [24]float64
	for _, j := range t.Jobs {
		h := int(j.Arrival/3600) % 24
		out[h] += j.SlotSeconds() / 3600
	}
	return out
}
