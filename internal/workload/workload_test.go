package workload

import (
	"math"
	"testing"
)

func TestFacebookTraceShape(t *testing.T) {
	tr := Facebook(64, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats(64 * 2)
	if st.Jobs != 5500 {
		t.Errorf("jobs = %d, want 5500", st.Jobs)
	}
	// Paper: roughly 68000 tasks. The statistical generator should land
	// in the same regime (tens of thousands).
	if st.Tasks < 30000 || st.Tasks > 150000 {
		t.Errorf("tasks = %d, want tens of thousands (paper ~68000)", st.Tasks)
	}
	// Calibrated slot demand (yields ~27%% datacenter utilization under
	// CoolAir's server management).
	if math.Abs(st.AvgUtilization-0.13) > 0.04 {
		t.Errorf("avg slot utilization = %0.3f, want ~0.12", st.AvgUtilization)
	}
	// Map counts within the published range.
	for _, j := range tr.Jobs {
		if j.Maps < 2 || j.Maps > 1190 {
			t.Fatalf("job %d has %d maps, outside 2–1190", j.ID, j.Maps)
		}
		if j.Reduces > 63 {
			t.Fatalf("job %d has %d reduces, outside 0–63", j.ID, j.Reduces)
		}
	}
}

func TestFacebookDeterministicPerSeed(t *testing.T) {
	a := Facebook(64, 7)
	b := Facebook(64, 7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("different lengths")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	c := Facebook(64, 8)
	if a.Jobs[0] == c.Jobs[0] && a.Jobs[100] == c.Jobs[100] {
		t.Error("different seeds produced identical traces")
	}
}

func TestFacebookHeavyTail(t *testing.T) {
	tr := Facebook(64, 2)
	small, big := 0, 0
	for _, j := range tr.Jobs {
		if j.Maps <= 10 {
			small++
		}
		if j.Maps >= 300 {
			big++
		}
	}
	if small < len(tr.Jobs)/2 {
		t.Errorf("only %d/%d small jobs; Facebook trace is mostly tiny jobs", small, len(tr.Jobs))
	}
	if big == 0 {
		t.Error("no large jobs; the heavy tail is missing")
	}
}

func TestNutchTraceShape(t *testing.T) {
	tr := Nutch(64, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats(64 * 2)
	if st.Jobs != 2000 {
		t.Errorf("jobs = %d, want 2000", st.Jobs)
	}
	// Every job: 42 maps + 1 reduce.
	for _, j := range tr.Jobs {
		if j.Maps != 42 || j.Reduces != 1 {
			t.Fatalf("job %d shape %d/%d, want 42/1", j.ID, j.Maps, j.Reduces)
		}
	}
	if math.Abs(st.MeanInterArrival-40) > 8 {
		t.Errorf("mean inter-arrival %0.1f s, want ~40", st.MeanInterArrival)
	}
	if math.Abs(st.AvgUtilization-0.14) > 0.02 {
		t.Errorf("avg slot utilization = %0.3f, want ~0.14", st.AvgUtilization)
	}
}

func TestWithDeadlines(t *testing.T) {
	tr := Facebook(64, 3)
	def := tr.WithDeadlines(6 * 3600)
	for i, j := range def.Jobs {
		if !j.Deferrable() {
			t.Fatalf("job %d not deferrable", i)
		}
		if j.Deadline != j.Arrival+6*3600 {
			t.Fatalf("job %d deadline %0.0f, want arrival+6h", i, j.Deadline)
		}
		// The original must be untouched.
		if tr.Jobs[i].Deferrable() {
			t.Fatal("WithDeadlines mutated the original trace")
		}
	}
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := []*Trace{
		{Jobs: []Job{{Maps: 0, MapDur: 10}}},
		{Jobs: []Job{{Maps: 2, MapDur: 0}}},
		{Jobs: []Job{{Maps: 2, MapDur: 10, Reduces: 1, RedDur: 0}}},
		{Jobs: []Job{{Arrival: 100, Deadline: 50, Maps: 2, MapDur: 10}}},
		{Jobs: []Job{{Arrival: 100, Deadline: 100, Maps: 2, MapDur: 1}, {Arrival: 50, Deadline: 50, Maps: 2, MapDur: 1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSlotSeconds(t *testing.T) {
	j := Job{Maps: 10, MapDur: 30, Reduces: 2, RedDur: 60}
	if got := j.SlotSeconds(); got != 420 {
		t.Errorf("SlotSeconds = %v, want 420", got)
	}
}

func TestHourlyDemandCoversDay(t *testing.T) {
	tr := Facebook(64, 4)
	hd := tr.HourlyDemand()
	var total float64
	for _, v := range hd {
		if v < 0 {
			t.Fatal("negative hourly demand")
		}
		total += v * 3600
	}
	st := tr.Stats(128)
	if math.Abs(total-st.SlotSeconds) > 1 {
		t.Errorf("hourly demand sums to %0.0f, stats say %0.0f", total, st.SlotSeconds)
	}
	// Diurnal pattern: business hours busier than pre-dawn.
	if hd[14] <= hd[4] {
		t.Errorf("hour 14 demand %0.1f should exceed hour 4 demand %0.1f", hd[14], hd[4])
	}
}

func TestArrivalsSpanTheDay(t *testing.T) {
	for _, tr := range []*Trace{Facebook(64, 5), Nutch(64, 5)} {
		first := tr.Jobs[0].Arrival
		last := tr.Jobs[len(tr.Jobs)-1].Arrival
		if first < 0 || last > 86400 {
			t.Errorf("%s arrivals outside the day: %0.0f..%0.0f", tr.Name, first, last)
		}
		if last-first < 20*3600 {
			t.Errorf("%s arrivals span only %0.1f h", tr.Name, (last-first)/3600)
		}
	}
}
