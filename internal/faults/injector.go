package faults

import (
	"math"
	"math/rand"

	"coolair/internal/control"
	"coolair/internal/cooling"
	"coolair/internal/units"
	"coolair/internal/weather"
)

// Injector applies a Plan to a running simulation. One injector serves
// one run: it carries the small amount of state some faults need (the
// frozen value of a stuck sensor, the last command delivered to the
// plant), all of which is reconstructed identically on a re-run because
// the simulation itself is deterministic.
type Injector struct {
	plan Plan
	// stuck[i] memorizes the reading frozen by fault i (keyed by fault
	// index so overlapping stuck faults on different targets coexist).
	stuck map[int]stuckValue
	// delivered is the last command actually handed to the plant, the
	// state a dropped mode switch falls back to.
	delivered    cooling.Command
	hasDelivered bool
}

// stuckValue holds the frozen readings of one stuck-at fault. Pod
// targets freeze every covered sensor; scalar targets use pods[0].
type stuckValue struct {
	pods map[int]float64
}

// NewInjector builds an injector for the plan. The plan is validated;
// an invalid plan returns an error rather than silently misbehaving
// mid-run.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, stuck: map[int]stuckValue{}}, nil
}

// Plan returns the injector's schedule.
func (in *Injector) Plan() Plan { return in.plan }

// noiseAt derives the deterministic "random" draw for fault fi at time
// t: the generator is re-seeded from (plan seed, fault index, physics
// step), so the value depends only on the plan and the clock, never on
// how many times or in what order the injector was consulted.
func (in *Injector) noiseAt(fi int, t float64) float64 {
	step := int64(math.Floor(t))
	rng := rand.New(rand.NewSource(in.plan.Seed*1_000_003 + int64(fi)*7_919 + step))
	return rng.NormFloat64()
}

// PerturbObservation applies every active sensor fault to the
// observation in place (the observation's slices are the caller's
// copies, so the physical state is untouched). Faults compose in plan
// order.
func (in *Injector) PerturbObservation(obs *control.Observation) {
	t := obs.Time
	for fi, f := range in.plan.Faults {
		switch f.Kind {
		case SensorStuck, SensorDropout, SensorSpike, SensorDrift:
		default:
			continue
		}
		if !f.ActiveAt(t) {
			delete(in.stuck, fi) // window closed: forget the frozen value
			continue
		}
		switch f.Target {
		case TargetPodInlet:
			for p := range obs.PodInlet {
				if f.Pod != AllPods && f.Pod != p {
					continue
				}
				v := in.corrupt(fi, f, p, t, float64(obs.PodInlet[p]))
				obs.PodInlet[p] = units.Celsius(v)
			}
		case TargetInsideRH:
			obs.InsideRH = units.RelHumidity(in.corrupt(fi, f, 0, t, float64(obs.InsideRH)))
		case TargetOutsideTemp:
			// The setters (not direct field writes) drop the humidity-
			// ratio memo Series.Sample left behind, so the corruption
			// reaches downstream Abs() consumers too.
			obs.Outside.SetTemp(units.Celsius(in.corrupt(fi, f, 0, t, float64(obs.Outside.Temp))))
		case TargetOutsideRH:
			obs.Outside.SetRH(units.RelHumidity(in.corrupt(fi, f, 0, t, float64(obs.Outside.RH))))
		}
	}
}

// corrupt maps one true sensor reading to its faulty value.
func (in *Injector) corrupt(fi int, f Fault, pod int, t, v float64) float64 {
	switch f.Kind {
	case SensorStuck:
		if f.Magnitude != 0 {
			return f.Magnitude // stuck-at-value: pinned to the magnitude
		}
		s, ok := in.stuck[fi]
		if !ok {
			s = stuckValue{pods: map[int]float64{}}
			in.stuck[fi] = s
		}
		frozen, ok := s.pods[pod]
		if !ok {
			frozen = v // first reading inside the window sticks
			s.pods[pod] = frozen
		}
		return frozen
	case SensorDropout:
		return math.NaN()
	case SensorSpike:
		return v + f.Magnitude*in.noiseAt(fi, t)
	case SensorDrift:
		return v + f.Magnitude*(t-f.Start)/3600
	default:
		return v
	}
}

// Actuate maps the controller's command to the command the plant
// actually receives, applying active actuator faults. It must be called
// exactly once per physics step (it records what was delivered, which a
// dropped mode switch falls back to).
func (in *Injector) Actuate(t float64, cmd cooling.Command) cooling.Command {
	out := cmd
	for _, f := range in.plan.Faults {
		if !f.ActiveAt(t) {
			continue
		}
		switch f.Kind {
		case FanStuck:
			if out.Mode == cooling.ModeFreeCooling {
				out.FanSpeed = f.Magnitude
			}
		case CompressorRefusal:
			if out.Mode == cooling.ModeACCool {
				out.Mode = cooling.ModeACFan
				out.CompressorSpeed = 0
			}
		case ModeSwitchDropped:
			if in.hasDelivered && out.Mode != in.delivered.Mode {
				out = in.delivered
			}
		}
	}
	in.delivered = out
	in.hasDelivered = true
	return out
}

// WrapForecaster returns a forecaster that serves base's predictions
// with the plan's forecast faults applied. A fault affects day d when
// its window overlaps any part of that day.
func (in *Injector) WrapForecaster(base weather.Forecaster) weather.Forecaster {
	return &faultyForecast{base: base, plan: in.plan}
}

// faultyForecast is the Forecaster the injector substitutes for the
// weather service. It is stateless: outages return nil/NaN, truncations
// shorten the hourly array, biases shift every value.
type faultyForecast struct {
	base weather.Forecaster
	plan Plan
}

// HourlyForecast implements weather.Forecaster.
func (ff *faultyForecast) HourlyForecast(d int) []units.Celsius {
	h := ff.base.HourlyForecast(d)
	for _, f := range ff.plan.Faults {
		if !f.overlapsDay(d) {
			continue
		}
		switch f.Kind {
		case ForecastOutage:
			return nil
		case ForecastTruncated:
			keep := int(f.Magnitude)
			if keep < len(h) {
				h = h[:keep]
			}
		case ForecastBias:
			out := make([]units.Celsius, len(h))
			for i, v := range h {
				out[i] = v + units.Celsius(f.Magnitude)
			}
			h = out
		}
	}
	return h
}

// DayMeanForecast implements weather.Forecaster. It stays consistent
// with the hourly view: outages are NaN, truncated days average the
// surviving hours, biases shift the mean.
func (ff *faultyForecast) DayMeanForecast(d int) units.Celsius {
	h := ff.HourlyForecast(d)
	if len(h) == 0 {
		return units.Celsius(math.NaN())
	}
	sum := 0.0
	for _, v := range h {
		sum += float64(v)
	}
	return units.Celsius(sum / float64(len(h)))
}
