// Chaos suite: whole-system fault-injection runs. External test package
// because it drives internal/sim, which itself imports internal/faults.
package faults_test

import (
	"testing"

	"coolair/internal/control"
	"coolair/internal/core"
	"coolair/internal/faults"
	"coolair/internal/model"
	"coolair/internal/sim"
	"coolair/internal/tks"
	"coolair/internal/weather"
	"coolair/internal/workload"
)

var (
	summerWeek = []int{150, 151, 152, 153, 154, 155, 156}
	winterWeek = []int{0, 1, 2, 3, 4, 5, 6}
)

// day2 is 06:00 on the second metered day of summerWeek — faults start
// there so the guard has a full day of healthy history first.
const day2 = 151*86400 + 6*3600

// runTKS drives a 7-day TKS run, guarded or raw, under the given plan
// (nil = fault-free). It returns the guard report (zero for unguarded)
// and any run error so callers can assert on unguarded failures.
func runTKS(t *testing.T, plan *faults.Plan, days []int, guarded bool) (*sim.Result, control.GuardReport, error) {
	t.Helper()
	env, err := sim.NewEnv(weather.Newark, sim.RealSim)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.RunConfig{Days: days, Trace: workload.Facebook(64, 1), KeepAllActive: true}
	if plan != nil {
		inj, err := faults.NewInjector(*plan)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
	}
	var ctrl control.Controller = tks.Baseline()
	var g *control.Guard
	if guarded {
		g = control.NewGuard(ctrl, control.GuardConfig{})
		ctrl = g
	}
	res, err := sim.Run(env, ctrl, cfg)
	var rep control.GuardReport
	if g != nil {
		rep = g.Report()
	}
	return res, rep, err
}

// Fault-free reference runs, computed once.
var ffSummer, ffWinter *sim.Result

func faultFree(t *testing.T, days []int) *sim.Result {
	t.Helper()
	cache := &ffSummer
	if days[0] == winterWeek[0] {
		cache = &ffWinter
	}
	if *cache == nil {
		res, _, err := runTKS(t, nil, days, true)
		if err != nil {
			t.Fatalf("fault-free run failed: %v", err)
		}
		*cache = res
	}
	return *cache
}

func TestChaosSensorFaultClasses(t *testing.T) {
	ff := faultFree(t, summerWeek)
	stale := control.GuardConfig{}.WithDefaults()

	cases := []struct {
		name  string
		fault faults.Fault
		bound float64 // allowed AvgViolation excess over fault-free, °C
		// failSafeBy, when > 0, is the latest absolute time by which the
		// fail-safe must have engaged.
		failSafeBy float64
	}{
		{
			name:       "stuck-all-pods",
			fault:      faults.Fault{Kind: faults.SensorStuck, Target: faults.TargetPodInlet, Pod: faults.AllPods, Start: day2},
			bound:      1.0,
			failSafeBy: day2 + stale.FlatlineSeconds + stale.StalenessSeconds + 600,
		},
		{
			name:       "dropout-one-pod",
			fault:      faults.Fault{Kind: faults.SensorDropout, Target: faults.TargetPodInlet, Pod: 2, Start: day2},
			bound:      1.0,
			failSafeBy: day2 + stale.StalenessSeconds + 600,
		},
		{
			name:  "spike-all-pods",
			fault: faults.Fault{Kind: faults.SensorSpike, Target: faults.TargetPodInlet, Pod: faults.AllPods, Start: day2, Magnitude: 3},
			bound: 2.0,
		},
		{
			name:  "drift-one-pod",
			fault: faults.Fault{Kind: faults.SensorDrift, Target: faults.TargetPodInlet, Pod: 1, Start: day2, Duration: 12 * 3600, Magnitude: 1},
			bound: 1.0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := faults.Plan{Seed: 9, Faults: []faults.Fault{tc.fault}}
			res, rep, err := runTKS(t, &plan, summerWeek, true)
			if err != nil {
				t.Fatalf("guarded run did not complete: %v", err)
			}
			if res.Summary.Days != len(summerWeek) {
				t.Fatalf("metered %d days, want %d", res.Summary.Days, len(summerWeek))
			}
			if res.Summary.AvgViolation > ff.Summary.AvgViolation+tc.bound {
				t.Errorf("guarded avg violation %.2f°C exceeds fault-free %.2f + %.1f",
					res.Summary.AvgViolation, ff.Summary.AvgViolation, tc.bound)
			}
			if tc.failSafeBy > 0 {
				if rep.FailSafeEngagements == 0 {
					t.Fatalf("fail-safe never engaged: %+v", rep)
				}
				if rep.FirstFailSafeTime < float64(day2) || rep.FirstFailSafeTime > tc.failSafeBy {
					t.Errorf("fail-safe engaged at %.0f s, want within (%d, %.0f]",
						rep.FirstFailSafeTime, day2, tc.failSafeBy)
				}
			}
			t.Logf("%s: guarded avg violation %.3f°C (fault-free %.3f), report %+v",
				tc.name, res.Summary.AvgViolation, ff.Summary.AvgViolation, rep)
		})
	}
}

func TestChaosFailSafeWithinOnePeriodOfStaleness(t *testing.T) {
	// The precise timing guarantee: readings go NaN at day2, the last
	// good reading is at most one observation step (120 s) earlier, and
	// the guard must declare the sensor dead and fail safe within one
	// control period (600 s) of staleness expiry.
	cfg := control.GuardConfig{}.WithDefaults()
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.SensorDropout, Target: faults.TargetPodInlet, Pod: 0, Start: day2},
	}}
	_, rep, err := runTKS(t, &plan, summerWeek, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailSafeEngagements == 0 {
		t.Fatalf("fail-safe never engaged: %+v", rep)
	}
	lo := day2 + cfg.StalenessSeconds - 120
	hi := day2 + cfg.StalenessSeconds + 600
	if rep.FirstFailSafeTime < lo || rep.FirstFailSafeTime > hi {
		t.Errorf("fail-safe at %.0f s, want within [%.0f, %.0f]", rep.FirstFailSafeTime, lo, hi)
	}
}

func TestChaosActuatorFaultClasses(t *testing.T) {
	cases := []struct {
		name  string
		days  []int
		fault faults.Fault
		bound float64
	}{
		{
			// A fan jammed at 15% through a hot day: the baseline escalates
			// to AC when the container heats, so violations stay bounded.
			name:  "fan-stuck",
			days:  summerWeek,
			fault: faults.Fault{Kind: faults.FanStuck, Start: day2, Duration: 86400, Magnitude: 0.15},
			bound: 1.5,
		},
		{
			// Mode switches silently dropped for six hours across midday.
			name:  "mode-switch-dropped",
			days:  summerWeek,
			fault: faults.Fault{Kind: faults.ModeSwitchDropped, Start: day2, Duration: 6 * 3600},
			bound: 1.5,
		},
		{
			// A compressor that refuses to start is survivable in winter,
			// when free cooling alone meets the setpoint.
			name:  "compressor-refusal",
			days:  winterWeek,
			fault: faults.Fault{Kind: faults.CompressorRefusal, Start: 1 * 86400},
			bound: 1.0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ff := faultFree(t, tc.days)
			plan := faults.Plan{Faults: []faults.Fault{tc.fault}}
			res, rep, err := runTKS(t, &plan, tc.days, true)
			if err != nil {
				t.Fatalf("guarded run did not complete: %v", err)
			}
			if res.Summary.Days != len(tc.days) {
				t.Fatalf("metered %d days, want %d", res.Summary.Days, len(tc.days))
			}
			if res.Summary.AvgViolation > ff.Summary.AvgViolation+tc.bound {
				t.Errorf("guarded avg violation %.2f°C exceeds fault-free %.2f + %.1f",
					res.Summary.AvgViolation, ff.Summary.AvgViolation, tc.bound)
			}
			t.Logf("%s: guarded avg violation %.3f°C (fault-free %.3f), report %+v",
				tc.name, res.Summary.AvgViolation, ff.Summary.AvgViolation, rep)
		})
	}
}

// --- CoolAir under forecast degradation ---------------------------------

var chaosModel *model.Model

// trainedEnv trains the Cooling Model once and reuses it, mirroring the
// sim package's own test caching.
func trainedEnv(t *testing.T) *sim.Env {
	t.Helper()
	if chaosModel == nil {
		env, err := sim.NewEnv(weather.Newark, sim.SmoothSim)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Train(4, workload.Facebook(64, 1), 42); err != nil {
			t.Fatal(err)
		}
		chaosModel = env.Model
	}
	env, err := sim.NewEnv(weather.Newark, sim.SmoothSim)
	if err != nil {
		t.Fatal(err)
	}
	env.Model = chaosModel
	return env
}

func runGuardedCoolAir(t *testing.T, plan *faults.Plan) (*sim.Result, control.GuardReport, *core.CoolAir) {
	t.Helper()
	env := trainedEnv(t)
	cfg := sim.RunConfig{Days: summerWeek, Trace: workload.Facebook(64, 1)}
	fc := weather.Forecaster(env.Forecast)
	if plan != nil {
		inj, err := faults.NewInjector(*plan)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
		fc = inj.WrapForecaster(fc)
	}
	ca, err := core.New(core.VersionOptions(core.VersionAllND, core.DefaultBandConfig()),
		env.Model, fc, env.Plant, env.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	g := control.NewGuard(ca, control.GuardConfig{})
	res, err := sim.Run(env, g, cfg)
	if err != nil {
		t.Fatalf("guarded CoolAir run did not complete: %v", err)
	}
	return res, g.Report(), ca
}

var ffCoolAir *sim.Result

func TestChaosForecastFaultClasses(t *testing.T) {
	if ffCoolAir == nil {
		ffCoolAir, _, _ = runGuardedCoolAir(t, nil)
	}
	ff := ffCoolAir

	t.Run("outage", func(t *testing.T) {
		plan := faults.Plan{Faults: []faults.Fault{{Kind: faults.ForecastOutage, Start: 0}}}
		res, _, ca := runGuardedCoolAir(t, &plan)
		if res.Summary.Days != len(summerWeek) {
			t.Fatalf("metered %d days", res.Summary.Days)
		}
		// Every StartDay must have fallen back (default band on day one,
		// yesterday's band after).
		if d := ca.Degradations(); d.ForecastFallbackDays != len(summerWeek) {
			t.Errorf("forecast fallback days = %d, want %d (%+v)",
				d.ForecastFallbackDays, len(summerWeek), d)
		}
		if res.Summary.AvgViolation > ff.Summary.AvgViolation+2.0 {
			t.Errorf("outage avg violation %.2f°C vs fault-free %.2f",
				res.Summary.AvgViolation, ff.Summary.AvgViolation)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		plan := faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ForecastTruncated, Start: 0, Magnitude: 6},
		}}
		res, _, _ := runGuardedCoolAir(t, &plan)
		if res.Summary.Days != len(summerWeek) {
			t.Fatalf("metered %d days", res.Summary.Days)
		}
		if res.Summary.AvgViolation > ff.Summary.AvgViolation+2.0 {
			t.Errorf("truncated avg violation %.2f°C vs fault-free %.2f",
				res.Summary.AvgViolation, ff.Summary.AvgViolation)
		}
	})

	t.Run("bias", func(t *testing.T) {
		plan := faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ForecastBias, Start: 0, Magnitude: 8},
		}}
		res, _, _ := runGuardedCoolAir(t, &plan)
		if res.Summary.Days != len(summerWeek) {
			t.Fatalf("metered %d days", res.Summary.Days)
		}
		if res.Summary.AvgViolation > ff.Summary.AvgViolation+2.0 {
			t.Errorf("bias avg violation %.2f°C vs fault-free %.2f",
				res.Summary.AvgViolation, ff.Summary.AvgViolation)
		}
	})
}

func TestChaosUnguardedDemonstrablyWorse(t *testing.T) {
	// All inlet sensors stick at a plausible-but-cold 14°C on a hot day:
	// below the TKS CloseTemp, so the raw baseline seals the fully loaded
	// container to "warm it up" and never re-opens it. The guard
	// flatline-detects the freeze (14°C is well inside the valid range),
	// declares the sensors dead, and fails safe onto the AC.
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.SensorStuck, Target: faults.TargetPodInlet, Pod: faults.AllPods, Start: day2, Magnitude: 14},
	}}
	guarded, rep, err := runTKS(t, &plan, summerWeek, true)
	if err != nil {
		t.Fatalf("guarded run did not complete: %v", err)
	}
	if rep.FailSafeEngagements == 0 {
		t.Fatalf("guard never failed safe on stuck sensors: %+v", rep)
	}

	raw, _, err := runTKS(t, &plan, summerWeek, false)
	if err != nil {
		// The unguarded controller crashing the run is "worse" too.
		t.Logf("unguarded run failed outright: %v", err)
		return
	}
	if raw.Summary.AvgViolation <= guarded.Summary.AvgViolation+1.0 {
		t.Errorf("unguarded avg violation %.2f°C should exceed guarded %.2f by > 1°C",
			raw.Summary.AvgViolation, guarded.Summary.AvgViolation)
	}
	t.Logf("stuck sensors: unguarded %.2f°C avg violation, guarded %.2f°C",
		raw.Summary.AvgViolation, guarded.Summary.AvgViolation)
}

func TestChaosDeterminism(t *testing.T) {
	// Same Plan + seed ⇒ byte-identical GuardReport and metrics.
	plan := faults.Plan{Seed: 1234, Faults: []faults.Fault{
		{Kind: faults.SensorSpike, Target: faults.TargetPodInlet, Pod: faults.AllPods, Start: day2, Magnitude: 3},
		{Kind: faults.SensorDropout, Target: faults.TargetPodInlet, Pod: 3, Start: day2 + 12*3600, Duration: 6 * 3600},
		{Kind: faults.FanStuck, Start: day2 + 86400, Duration: 43200, Magnitude: 0.2},
	}}
	resA, repA, err := runTKS(t, &plan, summerWeek, true)
	if err != nil {
		t.Fatal(err)
	}
	resB, repB, err := runTKS(t, &plan, summerWeek, true)
	if err != nil {
		t.Fatal(err)
	}
	if repA != repB {
		t.Errorf("guard reports differ:\n%+v\n%+v", repA, repB)
	}
	if resA.Summary != resB.Summary {
		t.Errorf("summaries differ:\n%+v\n%+v", resA.Summary, resB.Summary)
	}
	if resA.JobsCompleted != resB.JobsCompleted {
		t.Errorf("jobs completed differ: %d vs %d", resA.JobsCompleted, resB.JobsCompleted)
	}
}
