// Package faults is a deterministic, seedable fault-injection harness
// for the simulated datacenter. It perturbs the three trust boundaries a
// real deployment cannot take for granted: the monitoring sensors (pod
// inlets, cold-aisle humidity, outside air), the weather forecast
// service, and the cooling-plant actuators. Each fault is a typed,
// time-windowed perturbation scheduled from a Plan; the Injector applies
// the active faults to controller-facing observations, to the wrapped
// Forecaster, and to commands on their way to the plant.
//
// Everything the injector does is a pure function of the Plan (including
// its Seed) and the simulation clock, so two runs under the same plan
// produce byte-identical perturbations — the property the chaos suite
// relies on.
package faults

import (
	"fmt"
	"math"
)

// Kind enumerates the fault classes the harness can inject.
type Kind int

const (
	// SensorStuck freezes the targeted sensor: at the value it read when
	// the fault window opened (Magnitude 0), or pinned at Magnitude when
	// nonzero (a classic stuck-at-value fault).
	SensorStuck Kind = iota
	// SensorDropout replaces the reading with NaN (sensor offline).
	// Magnitude is unused.
	SensorDropout
	// SensorSpike adds zero-mean Gaussian shot noise with standard
	// deviation Magnitude (°C or %RH) to each reading in the window.
	SensorSpike
	// SensorDrift adds a miscalibration that grows by Magnitude per hour
	// from the start of the window (positive or negative).
	SensorDrift
	// ForecastOutage makes the forecaster unavailable: HourlyForecast
	// returns nil and DayMeanForecast returns NaN for affected days.
	ForecastOutage
	// ForecastTruncated cuts the hourly forecast array to Magnitude
	// hours (the service returned a partial response); the day mean is
	// recomputed from the surviving hours.
	ForecastTruncated
	// ForecastBias adds a gross constant bias of Magnitude °C to every
	// prediction for affected days.
	ForecastBias
	// FanStuck jams the free-cooling fan at speed Magnitude (0–1): any
	// free-cooling command in the window has its fan speed overridden.
	FanStuck
	// CompressorRefusal makes the AC compressor refuse to start: ac-cool
	// commands degrade to ac-fan. Magnitude is unused.
	CompressorRefusal
	// ModeSwitchDropped drops mode-switch commands: whenever the
	// commanded mode differs from the mode last delivered to the plant,
	// the previous command is delivered instead.
	ModeSwitchDropped
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SensorStuck:
		return "sensor-stuck"
	case SensorDropout:
		return "sensor-dropout"
	case SensorSpike:
		return "sensor-spike"
	case SensorDrift:
		return "sensor-drift"
	case ForecastOutage:
		return "forecast-outage"
	case ForecastTruncated:
		return "forecast-truncated"
	case ForecastBias:
		return "forecast-bias"
	case FanStuck:
		return "fan-stuck"
	case CompressorRefusal:
		return "compressor-refusal"
	case ModeSwitchDropped:
		return "mode-switch-dropped"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Valid reports whether k is a defined fault kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Target selects which signal a sensor fault corrupts. Forecast and
// actuator faults ignore the target.
type Target int

const (
	// TargetPodInlet corrupts pod inlet temperature sensors; Fault.Pod
	// selects which (AllPods for every pod).
	TargetPodInlet Target = iota
	// TargetInsideRH corrupts the cold-aisle relative-humidity sensor.
	TargetInsideRH
	// TargetOutsideTemp corrupts the outside air temperature sensor.
	TargetOutsideTemp
	// TargetOutsideRH corrupts the outside relative-humidity sensor.
	TargetOutsideRH
	numTargets
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetPodInlet:
		return "pod-inlet"
	case TargetInsideRH:
		return "inside-rh"
	case TargetOutsideTemp:
		return "outside-temp"
	case TargetOutsideRH:
		return "outside-rh"
	default:
		return fmt.Sprintf("target(%d)", int(t))
	}
}

// AllPods targets every pod inlet sensor at once.
const AllPods = -1

// Fault is one scheduled perturbation.
type Fault struct {
	Kind   Kind
	Target Target
	// Pod selects the pod inlet sensor for TargetPodInlet faults
	// (AllPods for all of them); ignored otherwise.
	Pod int
	// Start is the absolute simulation time (seconds since January 1st
	// midnight) at which the fault appears.
	Start float64
	// Duration is how long the fault lasts, in seconds. Zero or negative
	// means the fault never clears.
	Duration float64
	// Magnitude parameterizes the fault; its meaning depends on Kind
	// (see the Kind constants).
	Magnitude float64
}

// ActiveAt reports whether the fault window covers time t.
func (f Fault) ActiveAt(t float64) bool {
	if t < f.Start {
		return false
	}
	return f.Duration <= 0 || t < f.Start+f.Duration
}

// End returns the time at which the fault clears (+Inf if it never does).
func (f Fault) End() float64 {
	if f.Duration <= 0 {
		return math.Inf(1)
	}
	return f.Start + f.Duration
}

// overlapsDay reports whether the fault window intersects day d
// (0-based day of year).
func (f Fault) overlapsDay(d int) bool {
	dayStart := float64(d) * 86400
	return f.Start < dayStart+86400 && f.End() > dayStart
}

// Validate reports whether the fault is well-formed.
func (f Fault) Validate() error {
	if !f.Kind.Valid() {
		return fmt.Errorf("faults: invalid kind %d", int(f.Kind))
	}
	switch f.Kind {
	case SensorStuck, SensorDropout, SensorSpike, SensorDrift:
		if t := f.Target; t < 0 || t >= numTargets {
			return fmt.Errorf("faults: invalid target %d for %v", int(t), f.Kind)
		}
		if f.Target == TargetPodInlet && f.Pod < AllPods {
			return fmt.Errorf("faults: invalid pod %d", f.Pod)
		}
	case FanStuck:
		if f.Magnitude < 0 || f.Magnitude > 1 {
			return fmt.Errorf("faults: fan-stuck magnitude %.2f out of [0,1]", f.Magnitude)
		}
	case ForecastTruncated:
		if f.Magnitude < 0 || f.Magnitude > 24 {
			return fmt.Errorf("faults: forecast truncation to %.0f hours out of [0,24]", f.Magnitude)
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	return fmt.Sprintf("%v/%v pod=%d [%.0fs +%.0fs] mag=%.2f",
		f.Kind, f.Target, f.Pod, f.Start, f.Duration, f.Magnitude)
}

// Plan is a fault schedule: the full set of perturbations one run
// suffers, plus the seed that makes stochastic faults (spikes)
// reproducible.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// Validate checks every fault in the plan.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}
