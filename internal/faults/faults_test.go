package faults

import (
	"math"
	"testing"

	"coolair/internal/control"
	"coolair/internal/cooling"
	"coolair/internal/units"
	"coolair/internal/weather"
)

func testObs(t float64) control.Observation {
	return control.Observation{
		Time:     t,
		Outside:  weather.Conditions{Temp: 18, RH: 55},
		PodInlet: []units.Celsius{24, 25, 26, 27},
		InsideRH: 45,
	}
}

func TestFaultWindow(t *testing.T) {
	f := Fault{Kind: SensorDropout, Target: TargetPodInlet, Pod: AllPods, Start: 100, Duration: 50}
	for _, tc := range []struct {
		t    float64
		want bool
	}{{99, false}, {100, true}, {149, true}, {150, false}} {
		if got := f.ActiveAt(tc.t); got != tc.want {
			t.Errorf("ActiveAt(%v) = %v", tc.t, got)
		}
	}
	forever := Fault{Kind: SensorDropout, Start: 100}
	if !forever.ActiveAt(1e9) || !math.IsInf(forever.End(), 1) {
		t.Error("zero duration should never clear")
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Faults: []Fault{{Kind: Kind(99)}}},
		{Faults: []Fault{{Kind: FanStuck, Magnitude: 1.5}}},
		{Faults: []Fault{{Kind: ForecastTruncated, Magnitude: 30}}},
		{Faults: []Fault{{Kind: SensorStuck, Target: TargetPodInlet, Pod: -2}}},
	}
	for i, p := range bad {
		if _, err := NewInjector(p); err == nil {
			t.Errorf("plan %d should be rejected", i)
		}
	}
	if _, err := NewInjector(Plan{Faults: []Fault{
		{Kind: SensorSpike, Target: TargetInsideRH, Start: 0, Duration: 10, Magnitude: 2},
	}}); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestSensorFaultKinds(t *testing.T) {
	mk := func(k Kind, mag float64) *Injector {
		in, err := NewInjector(Plan{Seed: 7, Faults: []Fault{
			{Kind: k, Target: TargetPodInlet, Pod: 1, Start: 1000, Duration: 5000, Magnitude: mag},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}

	// Dropout: NaN inside the window, clean outside it.
	in := mk(SensorDropout, 0)
	obs := testObs(500)
	in.PerturbObservation(&obs)
	if math.IsNaN(float64(obs.PodInlet[1])) {
		t.Error("fault fired before its window")
	}
	obs = testObs(2000)
	in.PerturbObservation(&obs)
	if !math.IsNaN(float64(obs.PodInlet[1])) {
		t.Error("dropout should read NaN")
	}
	if obs.PodInlet[0] != 24 || obs.PodInlet[2] != 26 {
		t.Error("dropout leaked onto other pods")
	}

	// Stuck: the first in-window reading freezes.
	in = mk(SensorStuck, 0)
	obs = testObs(1000)
	obs.PodInlet[1] = 25.5
	in.PerturbObservation(&obs)
	if obs.PodInlet[1] != 25.5 {
		t.Error("first stuck reading should pass through")
	}
	obs = testObs(3000)
	obs.PodInlet[1] = 31
	in.PerturbObservation(&obs)
	if obs.PodInlet[1] != 25.5 {
		t.Errorf("stuck sensor read %v, want frozen 25.5", obs.PodInlet[1])
	}

	// Stuck-at-value: a nonzero magnitude pins the reading outright.
	in = mk(SensorStuck, 14)
	obs = testObs(1000)
	in.PerturbObservation(&obs)
	if obs.PodInlet[1] != 14 {
		t.Errorf("stuck-at-value read %v, want 14", obs.PodInlet[1])
	}

	// Drift: Magnitude °C per hour from the window start.
	in = mk(SensorDrift, 2)
	obs = testObs(1000 + 1800) // half an hour in
	in.PerturbObservation(&obs)
	if got := float64(obs.PodInlet[1]); math.Abs(got-26) > 1e-9 {
		t.Errorf("drift after 30 min = %v, want 25+1", got)
	}

	// Spike: deterministic noise, nonzero.
	in = mk(SensorSpike, 5)
	obs = testObs(2000)
	in.PerturbObservation(&obs)
	if obs.PodInlet[1] == 25 {
		t.Error("spike left the reading untouched")
	}
}

func TestSpikeDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Faults: []Fault{
		{Kind: SensorSpike, Target: TargetPodInlet, Pod: AllPods, Start: 0, Duration: 86400, Magnitude: 4},
	}}
	run := func() []units.Celsius {
		in, err := NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		var out []units.Celsius
		for i := 0; i < 50; i++ {
			obs := testObs(float64(i) * 30)
			in.PerturbObservation(&obs)
			out = append(out, obs.PodInlet...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spike values diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Different seed ⇒ different noise.
	plan.Seed = 43
	c := run()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seed has no effect on spike noise")
	}
}

func TestScalarTargets(t *testing.T) {
	in, err := NewInjector(Plan{Faults: []Fault{
		{Kind: SensorDropout, Target: TargetInsideRH, Start: 0, Duration: 100},
		{Kind: SensorDrift, Target: TargetOutsideTemp, Start: 0, Duration: 7200, Magnitude: -3},
		{Kind: SensorDropout, Target: TargetOutsideRH, Start: 0, Duration: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObs(50)
	in.PerturbObservation(&obs)
	if !math.IsNaN(float64(obs.InsideRH)) || !math.IsNaN(float64(obs.Outside.RH)) {
		t.Error("scalar dropouts did not fire")
	}
	if got := float64(obs.Outside.Temp); math.Abs(got-(18-3*50.0/3600)) > 1e-9 {
		t.Errorf("outside drift = %v", got)
	}
}

func TestOutsideFaultInvalidatesAbsMemo(t *testing.T) {
	// In the real loop the observation's Outside comes from
	// weather.Series.Sample, which memoizes the humidity ratio inside
	// the Conditions. Corrupting Temp/RH must drop that memo, or the
	// fault would be invisible to every downstream Abs() consumer
	// (regression: the injector used to assign the fields directly).
	s := &weather.Series{
		Temp: []units.Celsius{18, 18},
		RH:   []units.RelHumidity{55, 55},
		Abs:  []units.AbsHumidity{units.AbsFromRel(18, 55), units.AbsFromRel(18, 55)},
	}
	in, err := NewInjector(Plan{Faults: []Fault{
		{Kind: SensorStuck, Target: TargetOutsideTemp, Start: 0, Duration: 100, Magnitude: 35},
		{Kind: SensorStuck, Target: TargetOutsideRH, Start: 0, Duration: 100, Magnitude: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	obs := testObs(50)
	obs.Outside = s.Sample(0)
	in.PerturbObservation(&obs)
	if obs.Outside.Temp != 35 || obs.Outside.RH != 20 {
		t.Fatalf("stuck-at faults did not fire: %+v", obs.Outside)
	}
	if got, want := obs.Outside.Abs(), units.AbsFromRel(35, 20); got != want {
		t.Errorf("Abs() after corruption = %v, want %v (stale memo from the clean sample?)", got, want)
	}
}

func TestActuatorFaults(t *testing.T) {
	in, err := NewInjector(Plan{Faults: []Fault{
		{Kind: FanStuck, Start: 0, Duration: 1000, Magnitude: 0.2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := in.Actuate(10, cooling.Command{Mode: cooling.ModeFreeCooling, FanSpeed: 0.9})
	if got.FanSpeed != 0.2 {
		t.Errorf("fan-stuck delivered speed %v, want 0.2", got.FanSpeed)
	}
	// Non-free-cooling commands are untouched.
	got = in.Actuate(20, cooling.Command{Mode: cooling.ModeACFan})
	if got.Mode != cooling.ModeACFan {
		t.Errorf("fan-stuck altered mode: %v", got)
	}
	// After the window, the fan obeys again.
	got = in.Actuate(2000, cooling.Command{Mode: cooling.ModeFreeCooling, FanSpeed: 0.9})
	if got.FanSpeed != 0.9 {
		t.Errorf("cleared fault still active: %v", got)
	}

	in, _ = NewInjector(Plan{Faults: []Fault{{Kind: CompressorRefusal, Start: 0}}})
	got = in.Actuate(10, cooling.Command{Mode: cooling.ModeACCool, CompressorSpeed: 1})
	if got.Mode != cooling.ModeACFan || got.CompressorSpeed != 0 {
		t.Errorf("compressor refusal delivered %v, want ac-fan", got)
	}

	in, _ = NewInjector(Plan{Faults: []Fault{{Kind: ModeSwitchDropped, Start: 100, Duration: 200}}})
	first := in.Actuate(10, cooling.Command{Mode: cooling.ModeFreeCooling, FanSpeed: 0.5})
	if first.Mode != cooling.ModeFreeCooling {
		t.Fatalf("pre-window command altered: %v", first)
	}
	// Inside the window a mode switch is dropped: previous command rides.
	got = in.Actuate(150, cooling.Command{Mode: cooling.ModeACCool, CompressorSpeed: 1})
	if got.Mode != cooling.ModeFreeCooling || got.FanSpeed != 0.5 {
		t.Errorf("dropped switch delivered %v, want held free-cooling", got)
	}
	// Same-mode commands still pass (only the switch is dropped).
	got = in.Actuate(180, cooling.Command{Mode: cooling.ModeFreeCooling, FanSpeed: 0.8})
	if got.FanSpeed != 0.8 {
		t.Errorf("same-mode command blocked: %v", got)
	}
	// Window over: switches work again.
	got = in.Actuate(400, cooling.Command{Mode: cooling.ModeACCool, CompressorSpeed: 1})
	if got.Mode != cooling.ModeACCool {
		t.Errorf("post-window switch dropped: %v", got)
	}
}

func TestForecastFaults(t *testing.T) {
	series := weather.GenerateTMY(weather.Newark)
	base := weather.PerfectForecast{Series: series}

	mk := func(f Fault) weather.Forecaster {
		in, err := NewInjector(Plan{Faults: []Fault{f}})
		if err != nil {
			t.Fatal(err)
		}
		return in.WrapForecaster(base)
	}

	day := 100
	dayStart := float64(day) * 86400

	// Outage: nil hourly, NaN mean; other days untouched.
	fc := mk(Fault{Kind: ForecastOutage, Start: dayStart, Duration: 86400})
	if h := fc.HourlyForecast(day); h != nil {
		t.Errorf("outage day returned %d hours", len(h))
	}
	if !math.IsNaN(float64(fc.DayMeanForecast(day))) {
		t.Error("outage day mean should be NaN")
	}
	if h := fc.HourlyForecast(day + 1); len(h) != 24 {
		t.Errorf("neighbor day corrupted: %d hours", len(h))
	}
	if got, want := fc.DayMeanForecast(day+1), base.DayMeanForecast(day+1); got != want {
		t.Errorf("neighbor mean %v, want %v", got, want)
	}

	// Truncation: short array, mean over surviving hours.
	fc = mk(Fault{Kind: ForecastTruncated, Start: dayStart, Duration: 86400, Magnitude: 6})
	h := fc.HourlyForecast(day)
	if len(h) != 6 {
		t.Fatalf("truncated to %d hours, want 6", len(h))
	}
	sum := 0.0
	for _, v := range h {
		sum += float64(v)
	}
	if got := float64(fc.DayMeanForecast(day)); math.Abs(got-sum/6) > 1e-9 {
		t.Errorf("truncated mean %v, want %v", got, sum/6)
	}

	// Bias: every hour and the mean shift together.
	fc = mk(Fault{Kind: ForecastBias, Start: dayStart, Duration: 86400, Magnitude: 10})
	h = fc.HourlyForecast(day)
	hb := base.HourlyForecast(day)
	for i := range h {
		if math.Abs(float64(h[i]-hb[i])-10) > 1e-9 {
			t.Fatalf("hour %d bias %v", i, h[i]-hb[i])
		}
	}
	if got := float64(fc.DayMeanForecast(day) - base.DayMeanForecast(day)); math.Abs(got-10) > 1e-9 {
		t.Errorf("mean bias %v, want 10", got)
	}
}

func TestKindAndTargetStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has no name: %q", int(k), s)
		}
	}
	for tg := Target(0); tg < numTargets; tg++ {
		if s := tg.String(); s == "" || s[0] == 't' {
			t.Errorf("target %d has no name: %q", int(tg), s)
		}
	}
}
